//! The paper's implementation: dense revised simplex on the (simulated)
//! GPU.
//!
//! Device-resident state: the active constraint matrix `A` (column-major so
//! the one-thread-per-row kernels coalesce), the explicit basis inverse
//! `B⁻¹`, the iterate vectors, the pricing costs, and a `u32` mirror of the
//! basis for masking. Per iteration the backend issues the same kernel
//! sequence the paper describes — two-pass transposed gemv for `π` and `d`,
//! reductions for the argmins, one gemv for FTRAN, elementwise ratio, and
//! the O(m²) eta kernel for `B⁻¹` — every launch and every PCIe round-trip
//! charged by the simulator.

use gpu_sim::{DeviceBuffer, Gpu, LaunchConfig, SimTime, TimeCategory};
use linalg::gpu::{self as gblas, DeviceMatrix, GemvTStrategy, Layout};
use linalg::{DenseMatrix, Scalar};

use super::gpu_kernels::{MapNegIdxK, MaskBasicK, RatioK, UpdateBetaK};
use crate::backend::{Backend, RatioOutcome};

const BLOCK: u32 = 128;

/// Dense simulated-GPU backend.
pub struct GpuDenseBackend<'g, T: Scalar> {
    gpu: &'g Gpu,
    /// Host copy of the *full* matrix (refactorization needs artificials).
    a_host: DenseMatrix<T>,
    b_host: Vec<T>,
    /// Device copy of the active columns only.
    a_dev: DeviceMatrix<T>,
    binv: DeviceMatrix<T>,
    beta: DeviceBuffer<T>,
    pi: DeviceBuffer<T>,
    d: DeviceBuffer<T>,
    alpha: DeviceBuffer<T>,
    ratios: DeviceBuffer<T>,
    costs: DeviceBuffer<T>,
    cb: DeviceBuffer<T>,
    xb: DeviceBuffer<u32>,
    n_active: usize,
    m: usize,
    /// Layout of the device matrices (col-major normally; row-major for
    /// the F4 coalescing ablation).
    layout: Layout,
    /// Transposed-gemv strategy (two-pass coalesced vs. naive).
    gemv_t_strategy: GemvTStrategy,
}

impl<'g, T: Scalar> GpuDenseBackend<'g, T> {
    /// Build with the paper's configuration: col-major device matrices and
    /// the coalesced two-pass transposed gemv.
    pub fn new(
        gpu: &'g Gpu,
        a: &DenseMatrix<T>,
        b: &[T],
        n_active: usize,
        basis0: &[usize],
    ) -> Self {
        Self::with_layout(gpu, a, b, n_active, basis0, Layout::ColMajor, GemvTStrategy::TwoPass)
    }

    /// Build with an explicit layout/strategy (coalescing ablation).
    pub fn with_layout(
        gpu: &'g Gpu,
        a: &DenseMatrix<T>,
        b: &[T],
        n_active: usize,
        basis0: &[usize],
        layout: Layout,
        gemv_t_strategy: GemvTStrategy,
    ) -> Self {
        let m = a.rows();
        assert_eq!(b.len(), m, "rhs length mismatch");
        assert!(n_active <= a.cols(), "n_active exceeds column count");
        if layout == Layout::RowMajor {
            assert_eq!(
                gemv_t_strategy,
                GemvTStrategy::Naive,
                "two-pass gemv_t requires col-major storage"
            );
        }
        let a_active = a.select_cols(&(0..n_active).collect::<Vec<_>>());
        let a_dev = DeviceMatrix::upload(gpu, &a_active, layout);
        let binv = DeviceMatrix::identity(gpu, m, layout);
        let beta = gpu.htod(b);
        let pi = gpu.alloc(m, T::ZERO);
        let d = gpu.alloc(n_active, T::ZERO);
        let alpha = gpu.alloc(m, T::ZERO);
        let ratios = gpu.alloc(m, T::ZERO);
        let costs = gpu.alloc(n_active, T::ZERO);
        let cb = gpu.alloc(m, T::ZERO);
        let xb_host: Vec<u32> = basis0.iter().map(|&j| j as u32).collect();
        let xb = gpu.htod(&xb_host);
        GpuDenseBackend {
            gpu,
            a_host: a.clone(),
            b_host: b.to_vec(),
            a_dev,
            binv,
            beta,
            pi,
            d,
            alpha,
            ratios,
            costs,
            cb,
            xb,
            n_active,
            m,
            layout,
            gemv_t_strategy,
        }
    }

    /// The device handle (for counter snapshots in experiments).
    pub fn gpu(&self) -> &Gpu {
        self.gpu
    }
}

impl<T: Scalar> Backend<T> for GpuDenseBackend<'_, T> {
    fn name(&self) -> &'static str {
        "gpu-dense"
    }

    fn clock(&self) -> SimTime {
        self.gpu.elapsed()
    }

    fn m(&self) -> usize {
        self.m
    }

    fn n_active(&self) -> usize {
        self.n_active
    }

    fn set_phase_costs(&mut self, c: &[T]) {
        assert!(c.len() >= self.n_active, "phase costs too short");
        self.gpu.htod_into(&c[..self.n_active], &mut self.costs);
    }

    fn set_basic_cost(&mut self, row: usize, cost: T) {
        self.gpu.htod_elem(&mut self.cb, row, cost);
    }

    fn set_basic_col(&mut self, row: usize, col: usize) {
        self.gpu.htod_elem(&mut self.xb, row, col as u32);
    }

    fn compute_pricing_window(&mut self, start: usize, len: usize) {
        assert!(start + len <= self.n_active, "pricing window out of range");
        // π = c_Bᵀ B⁻¹  ⇔  π = (B⁻¹)ᵀ c_B.
        gblas::gemv_t(
            self.gpu,
            T::ONE,
            &self.binv,
            self.cb.view(),
            T::ZERO,
            self.pi.view_mut(),
            self.gemv_t_strategy,
        );
        // d[start..start+len] = c[window] − A[:, window]ᵀπ. The column-block
        // product needs contiguous columns (col-major); the row-major
        // ablation backend always prices the full range.
        if self.layout == Layout::ColMajor {
            gblas::copy(
                self.gpu,
                self.costs.view().subview(start, len),
                self.d.view_mut().subview_mut(start, len),
            );
            gblas::gemv_t_cols(
                self.gpu,
                -T::ONE,
                &self.a_dev,
                start,
                len,
                self.pi.view(),
                T::ONE,
                self.d.view_mut().subview_mut(start, len),
                self.gemv_t_strategy,
            );
        } else {
            gblas::copy(self.gpu, self.costs.view(), self.d.view_mut());
            gblas::gemv_t(
                self.gpu,
                -T::ONE,
                &self.a_dev,
                self.pi.view(),
                T::ONE,
                self.d.view_mut(),
                self.gemv_t_strategy,
            );
        }
    }

    fn entering_dantzig_window(
        &mut self,
        tol: T,
        start: usize,
        len: usize,
    ) -> Option<(usize, T)> {
        assert!(start + len <= self.n_active, "selection window out of range");
        self.gpu.launch(
            LaunchConfig::for_elems(self.m, BLOCK),
            &MaskBasicK { d: self.d.view_mut(), xb: self.xb.view(), m: self.m, n_active: self.n_active },
        );
        let (v, q) = gblas::argmin(self.gpu, self.d.view().subview(start, len), len);
        if v < -tol {
            Some((start + q as usize, v))
        } else {
            None
        }
    }

    fn entering_bland(&mut self, tol: T) -> Option<(usize, T)> {
        self.gpu.launch(
            LaunchConfig::for_elems(self.m, BLOCK),
            &MaskBasicK { d: self.d.view_mut(), xb: self.xb.view(), m: self.m, n_active: self.n_active },
        );
        let mut idx = self.gpu.alloc(self.n_active, u32::MAX);
        self.gpu.launch(
            LaunchConfig::for_elems(self.n_active, BLOCK),
            &MapNegIdxK { d: self.d.view(), tol, out: idx.view_mut(), n: self.n_active },
        );
        let q = gblas::reduce_u32_min(self.gpu, idx.view(), self.n_active);
        if q == u32::MAX {
            return None;
        }
        // Fetch d_q (one scalar over PCIe, as the era's codes did).
        let dq = self.gpu.dtoh_range(&self.d, q as usize, 1)[0];
        Some((q as usize, dq))
    }

    fn compute_alpha(&mut self, q: usize) {
        assert!(q < self.n_active, "entering column out of active range");
        match self.layout {
            Layout::ColMajor => {
                let aq = self.a_dev.col_view(q);
                gblas::gemv_n(self.gpu, T::ONE, &self.binv, aq, T::ZERO, self.alpha.view_mut());
            }
            Layout::RowMajor => {
                // No contiguous column view exists; extract the column with
                // a strided kernel first (honest extra cost of this layout).
                let mut aq = self.gpu.alloc(self.m, T::ZERO);
                self.gpu.launch(
                    LaunchConfig::for_elems(self.m, BLOCK),
                    &ColExtractRowMajorK {
                        mat: self.a_dev.view(),
                        rows: self.m,
                        cols: self.n_active,
                        j: q,
                        out: aq.view_mut(),
                    },
                );
                gblas::gemv_n(self.gpu, T::ONE, &self.binv, aq.view(), T::ZERO, self.alpha.view_mut());
            }
        }
    }

    fn ratio_test(&mut self, pivot_tol: T) -> RatioOutcome<T> {
        if self.m == 0 {
            // Zero-row programs: nothing can block the entering variable.
            return RatioOutcome::Unbounded;
        }
        self.gpu.launch(
            LaunchConfig::for_elems(self.m, BLOCK),
            &RatioK {
                alpha: self.alpha.view(),
                beta: self.beta.view(),
                tol: pivot_tol,
                out: self.ratios.view_mut(),
                m: self.m,
            },
        );
        let (theta, p) = gblas::argmin(self.gpu, self.ratios.view(), self.m);
        if theta.is_finite() {
            RatioOutcome::Pivot { p: p as usize, theta }
        } else {
            RatioOutcome::Unbounded
        }
    }

    fn update(&mut self, p: usize, theta: T) {
        self.gpu.launch(
            LaunchConfig::for_elems(self.m, BLOCK),
            &UpdateBetaK {
                beta: self.beta.view_mut(),
                alpha: self.alpha.view(),
                theta,
                p,
                m: self.m,
            },
        );
        gblas::pivot_update(self.gpu, &mut self.binv, self.alpha.view(), p);
    }

    fn beta(&mut self) -> Vec<T> {
        self.gpu.dtoh(&self.beta)
    }

    fn objective_now(&mut self) -> T {
        gblas::dot(self.gpu, self.cb.view(), self.beta.view())
    }

    fn refactorize(&mut self, basis: &[usize]) -> Result<(), ()> {
        // Fast path: device-resident Gauss–Jordan reinversion over [B | I]
        // (col-major only; no pivoting — falls back to the pivoting host
        // path on a small pivot).
        if self.layout == Layout::ColMajor
            && self.refactorize_on_device(basis).is_ok() {
                return Ok(());
            }
        self.refactorize_on_host(basis)
    }

    fn alpha_at(&mut self, i: usize) -> T {
        self.gpu.dtoh_range(&self.alpha, i, 1)[0]
    }
}

impl<T: Scalar> GpuDenseBackend<'_, T> {
    /// Device-side reinversion: assemble B from the resident active columns
    /// (artificials are unit columns), invert in place, recompute β = B⁻¹b.
    fn refactorize_on_device(&mut self, basis: &[usize]) -> Result<(), ()> {
        use super::gpu_kernels::ClampNonNegK;
        let m = self.m;
        let mut bmat = DeviceMatrix::<T>::zeros(self.gpu, m, m, Layout::ColMajor);
        for (r, &j) in basis.iter().enumerate() {
            if j < self.n_active {
                gblas::copy(
                    self.gpu,
                    self.a_dev.col_view(j),
                    bmat.view_mut().subview_mut(r * m, m),
                );
            } else {
                // Artificial column of row `row`: e_row, written as one
                // scalar on top of the zero-initialized column.
                let row = match basis_artificial_row(&self.a_host, j) {
                    Some(row) => row,
                    None => return Err(()),
                };
                let view = bmat.view_mut();
                view.set(r * m + row, T::ONE);
                self.gpu.charge(
                    TimeCategory::TransferH2D,
                    gpu_sim::timing::transfer_time(self.gpu.spec(), T::BYTES),
                );
            }
        }
        let pivot_tol = T::from_f64(if T::IS_F64 { 1e-11 } else { 1e-6 });
        let inv = gblas::invert_gauss_jordan(self.gpu, &bmat, pivot_tol).ok_or(())?;
        self.binv = inv;
        // β = B⁻¹ b, clamped at zero.
        let b_dev = self.gpu.htod(&self.b_host);
        gblas::gemv_n(self.gpu, T::ONE, &self.binv, b_dev.view(), T::ZERO, self.beta.view_mut());
        self.gpu.launch(
            LaunchConfig::for_elems(m, BLOCK),
            &ClampNonNegK { x: self.beta.view_mut(), n: m },
        );
        Ok(())
    }

    /// Host-side pivoting reinversion (fallback; always succeeds on a
    /// non-singular basis).
    fn refactorize_on_host(&mut self, basis: &[usize]) -> Result<(), ()> {
        let m = self.m;
        // Reinversion runs on the host in f64 (the era's codes pulled the
        // basis back for a dgetrf-style refactor), then re-uploads B⁻¹ and
        // β — both PCIe transfers are charged below via htod_into.
        let mut bmat = DenseMatrix::<f64>::zeros(m, m);
        for (r, &j) in basis.iter().enumerate() {
            for i in 0..m {
                bmat.set(i, r, self.a_host.get(i, j).to_f64());
            }
        }
        let inv = linalg::blas::gauss_jordan_invert(&bmat).ok_or(())?;
        // Charge the host-side inversion at the modeled CPU rate so the GPU
        // clock stays the single timeline.
        let cpu = linalg::CpuModel::core2_era();
        let m3 = (m as u64).pow(3);
        self.gpu.charge(
            TimeCategory::KernelBody,
            cpu.op_time(2 * m3, (m as u64 * m as u64) * 8, true),
        );

        let mut inv_t = DenseMatrix::<T>::zeros(m, m);
        for j in 0..m {
            for i in 0..m {
                inv_t.set(i, j, T::from_f64(inv.get(i, j)));
            }
        }
        self.binv = DeviceMatrix::upload(self.gpu, &inv_t, self.layout);
        let mut beta_h = vec![T::ZERO; m];
        linalg::blas::gemv_n(T::ONE, &inv_t, &self.b_host, T::ZERO, &mut beta_h);
        for v in beta_h.iter_mut() {
            *v = v.maxs(T::ZERO);
        }
        self.gpu.htod_into(&beta_h, &mut self.beta);
        Ok(())
    }
}

/// Row carrying the single +1 of an identity (artificial) column, found by
/// scanning the host copy.
fn basis_artificial_row<T: Scalar>(a: &DenseMatrix<T>, j: usize) -> Option<usize> {
    let mut row = None;
    for (i, &v) in a.col(j).iter().enumerate() {
        if v == T::ONE && row.is_none() {
            row = Some(i);
        } else if v != T::ZERO && v != T::ONE {
            return None;
        }
    }
    row
}

/// Column extraction from a row-major device matrix (strided, uncoalesced —
/// part of the price the F4 ablation pays).
struct ColExtractRowMajorK<T: Scalar> {
    mat: gpu_sim::DView<T>,
    rows: usize,
    cols: usize,
    j: usize,
    out: gpu_sim::DViewMut<T>,
}

impl<T: Scalar> gpu_sim::Kernel for ColExtractRowMajorK<T> {
    fn name(&self) -> &'static str {
        "col_extract_rm"
    }
    fn run(&self, t: &gpu_sim::ThreadCtx) {
        let i = t.global_id();
        if i < self.rows {
            self.out.set(i, self.mat.get(self.j + i * self.cols));
        }
    }
    fn cost(&self, cfg: &LaunchConfig) -> gpu_sim::KernelCost {
        let m = self.rows as u64;
        gpu_sim::KernelCost::new()
            .read(gpu_sim::AccessPattern::strided::<T>(m, self.cols as u64 * T::BYTES))
            .write(gpu_sim::AccessPattern::coalesced::<T>(m))
            .active_threads(cfg, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn wyndor_std() -> (DenseMatrix<f64>, Vec<f64>, Vec<f64>, Vec<usize>) {
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0, 1.0, 0.0],
            vec![3.0, 2.0, 0.0, 0.0, 1.0],
        ]);
        (a, vec![4.0, 12.0, 18.0], vec![-3.0, -5.0, 0.0, 0.0, 0.0], vec![2, 3, 4])
    }

    #[test]
    fn gpu_iteration_matches_cpu_backend() {
        use crate::backends::CpuDenseBackend;
        let (a, b, c, basis0) = wyndor_std();
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let mut gb = GpuDenseBackend::new(&gpu, &a, &b, 5, &basis0);
        let mut cb = CpuDenseBackend::new(&a, &b, 5, &basis0);
        for be in [&mut gb as &mut dyn Backend<f64>, &mut cb as &mut dyn Backend<f64>] {
            be.set_phase_costs(&c);
            for (r, &j) in basis0.iter().enumerate() {
                be.set_basic_cost(r, c[j]);
            }
            be.compute_pricing();
        }
        let (gq, gd) = gb.entering_dantzig(1e-9).unwrap();
        let (cq, cd) = cb.entering_dantzig(1e-9).unwrap();
        assert_eq!(gq, cq);
        assert_eq!(gd, cd);
        gb.compute_alpha(gq);
        cb.compute_alpha(cq);
        let gr = gb.ratio_test(1e-9);
        let cr = cb.ratio_test(1e-9);
        assert_eq!(gr, cr);
        if let RatioOutcome::Pivot { p, theta } = gr {
            gb.update(p, theta);
            cb.update(p, theta);
            gb.set_basic_col(p, gq);
            gb.set_basic_cost(p, c[gq]);
            cb.set_basic_col(p, cq);
            cb.set_basic_cost(p, c[cq]);
        }
        assert_eq!(gb.beta(), cb.beta());
        assert_eq!(gb.objective_now(), cb.objective_now());
        // The GPU backend actually used the device.
        let counters = gpu.counters();
        assert!(counters.kernels_launched > 10);
        assert!(counters.d2h_count >= 2);
    }

    #[test]
    fn refactorize_round_trips_binv() {
        let (a, b, _c, basis0) = wyndor_std();
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let mut gb = GpuDenseBackend::new(&gpu, &a, &b, 5, &basis0);
        // Pivot column 0 into row 0, then refactorize and check β = B⁻¹b.
        gb.set_phase_costs(&[-3.0, -5.0, 0.0, 0.0, 0.0]);
        gb.compute_alpha(0);
        gb.update(0, 4.0);
        gb.set_basic_col(0, 0);
        gb.refactorize(&[0, 3, 4]).unwrap();
        let beta = gb.beta();
        // B = [a0 | e1 | e2] → β = (4, 12, 18 − 3·4) = (4, 12, 6).
        assert_eq!(beta, vec![4.0, 12.0, 6.0]);
    }

    #[test]
    fn device_refactorization_handles_artificial_columns() {
        // Basis mixing a structural column with artificials (unit columns
        // beyond n_active) — the device path must assemble e_r correctly.
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 1.0, 0.0], // cols: x, y | artificials u1, u2
            vec![1.0, 3.0, 0.0, 1.0],
        ]);
        let b = vec![5.0, 10.0];
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let mut gb = GpuDenseBackend::new(&gpu, &a, &b, 2, &[2, 3]);
        // Basis = {x (col 0), artificial u2 (col 3)} → B = [[2,0],[1,1]].
        gb.refactorize(&[0, 3]).unwrap();
        let beta = gb.beta();
        // B⁻¹ b = [[0.5,0],[-0.5,1]]·(5,10) = (2.5, 7.5).
        assert!((beta[0] - 2.5).abs() < 1e-12, "{beta:?}");
        assert!((beta[1] - 7.5).abs() < 1e-12, "{beta:?}");
        // The device path was used: no big H2D of a host-inverted matrix —
        // check it stayed resident by confirming d2h traffic is only the
        // pivot probes + the beta download (m pivots + m elements).
        let c = gpu.counters();
        assert!(c.d2h_count >= 2, "pivot probes happen over PCIe");
    }

    #[test]
    fn device_and_host_refactorization_agree() {
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 0.5, 1.0, 0.0, 0.0],
            vec![1.0, 5.0, 1.0, 0.0, 1.0, 0.0],
            vec![0.5, 1.0, 6.0, 0.0, 0.0, 1.0],
        ]);
        let b = vec![3.0, 7.0, 11.0];
        let basis = vec![0usize, 1, 2];

        let gpu1 = Gpu::new(DeviceSpec::gtx280());
        let mut dev = GpuDenseBackend::new(&gpu1, &a, &b, 3, &[3, 4, 5]);
        dev.refactorize_on_device(&basis).unwrap();
        let beta_dev = dev.beta();

        let gpu2 = Gpu::new(DeviceSpec::gtx280());
        let mut host = GpuDenseBackend::new(&gpu2, &a, &b, 3, &[3, 4, 5]);
        host.refactorize_on_host(&basis).unwrap();
        let beta_host = host.beta();

        for (d, h) in beta_dev.iter().zip(&beta_host) {
            assert!((d - h).abs() < 1e-9, "{beta_dev:?} vs {beta_host:?}");
        }
    }

    #[test]
    fn row_major_backend_produces_same_values() {
        let (a, b, c, basis0) = wyndor_std();
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let mut gb = GpuDenseBackend::with_layout(
            &gpu,
            &a,
            &b,
            5,
            &basis0,
            Layout::RowMajor,
            GemvTStrategy::Naive,
        );
        gb.set_phase_costs(&c);
        for (r, &j) in basis0.iter().enumerate() {
            gb.set_basic_cost(r, c[j]);
        }
        gb.compute_pricing();
        let (q, d) = gb.entering_dantzig(1e-9).unwrap();
        assert_eq!((q, d), (1, -5.0));
        gb.compute_alpha(q);
        assert_eq!(gb.alpha_at(1), 2.0);
    }
}
