//! The paper's implementation: dense revised simplex on the (simulated)
//! GPU.
//!
//! Device-resident state: the active constraint matrix `A` (column-major so
//! the one-thread-per-row kernels coalesce), the explicit basis inverse
//! `B⁻¹`, the iterate vectors, the pricing costs, and a `u32` mirror of the
//! basis for masking. Per iteration the backend issues the same kernel
//! sequence the paper describes — two-pass transposed gemv for `π` and `d`,
//! reductions for the argmins, one gemv for FTRAN, elementwise ratio, and
//! the O(m²) eta kernel for `B⁻¹` — every launch and every PCIe round-trip
//! charged by the simulator.

use gpu_sim::{BufferPool, DeviceBuffer, Gpu, LaunchConfig, Launcher, SimTime, TimeCategory};
use linalg::gpu::{self as gblas, DeviceMatrix, GemvTStrategy, Layout};
use linalg::{DenseMatrix, Scalar};

use super::gpu_kernels::{
    BuildEtaK, EtaBtranK, EtaFtranK, GatherAtK, MapNegIdxK, MaskBasicK, RatioK, UpdateBetaK,
};
use crate::backend::{Backend, RatioOutcome};
use crate::error::BackendError;
use crate::options::BasisRepresentation;

const BLOCK: u32 = 128;

/// Dense simulated-GPU backend.
pub struct GpuDenseBackend<'g, T: Scalar> {
    gpu: &'g Gpu,
    /// Host copy of the *full* matrix (refactorization needs artificials).
    a_host: DenseMatrix<T>,
    b_host: Vec<T>,
    /// Device copy of the active columns only.
    a_dev: DeviceMatrix<T>,
    binv: DeviceMatrix<T>,
    beta: DeviceBuffer<T>,
    pi: DeviceBuffer<T>,
    d: DeviceBuffer<T>,
    alpha: DeviceBuffer<T>,
    ratios: DeviceBuffer<T>,
    costs: DeviceBuffer<T>,
    cb: DeviceBuffer<T>,
    xb: DeviceBuffer<u32>,
    n_active: usize,
    m: usize,
    /// Layout of the device matrices (col-major normally; row-major for
    /// the F4 coalescing ablation).
    layout: Layout,
    /// Transposed-gemv strategy (two-pass coalesced vs. naive).
    gemv_t_strategy: GemvTStrategy,
    /// Two-slot scalar staging buffer: fused probe chains write
    /// `(value, index)` here so each per-iteration pivot probe comes back
    /// in one batched PCIe transfer instead of one per reduction.
    stage: DeviceBuffer<T>,
    /// Charge each per-iteration kernel chain as one fused launch group
    /// (one launch overhead for the whole chain). Arithmetic is identical
    /// either way; only the accounting differs.
    fuse: bool,
    /// How `B⁻¹` is maintained between reinversions.
    rep: BasisRepresentation,
    /// Device-resident eta chain (pivot row + eta column), oldest first.
    etas: Vec<(usize, DeviceBuffer<T>)>,
    /// Recycles retired eta buffers across reinversions so the steady
    /// state allocates nothing (the device eta memory manager).
    pool: BufferPool<T>,
    /// Length-m scratch for the BTRAN eta sweep (`c_B` working copy).
    work: DeviceBuffer<T>,
    /// Length-m ping-pong partner for the FTRAN eta sweep over `α`.
    alpha_tmp: DeviceBuffer<T>,
    /// Host-side LU of the last refactorized basis (SparseLU only; `None`
    /// while `B₀ = I`, the initial slack/artificial basis).
    lu: Option<linalg::SparseLu<T>>,
    /// Device mirror of `lu`'s factors, re-uploaded at each reinversion.
    lu_dev: Option<gblas::DeviceLu<T>>,
    /// Length-m device scratch for the LU triangular solves.
    lu_scratch: DeviceBuffer<T>,
    /// Cumulative LU counters reported through `Backend::lu_stats`.
    lu_report: crate::backend::LuReport,
    /// EXPAND ratio-test shift (0 = legacy bitwise ratios).
    shift: T,
}

impl<'g, T: Scalar> GpuDenseBackend<'g, T> {
    /// Build with the paper's configuration: col-major device matrices and
    /// the coalesced two-pass transposed gemv. Panics on a device fault
    /// during setup; prefer [`Self::try_new`] where faults are in play.
    pub fn new(
        gpu: &'g Gpu,
        a: &DenseMatrix<T>,
        b: &[T],
        n_active: usize,
        basis0: &[usize],
    ) -> Self {
        Self::try_new(gpu, a, b, n_active, basis0)
            .unwrap_or_else(|e| panic!("{e} while building GPU backend"))
    }

    /// Fallible [`Self::new`]: a device fault during the initial uploads /
    /// allocations surfaces as [`BackendError::Device`] instead of a panic,
    /// so the solver reports it as a device error, not a crash.
    pub fn try_new(
        gpu: &'g Gpu,
        a: &DenseMatrix<T>,
        b: &[T],
        n_active: usize,
        basis0: &[usize],
    ) -> Result<Self, BackendError> {
        Self::try_with_layout(
            gpu,
            a,
            b,
            n_active,
            basis0,
            Layout::ColMajor,
            GemvTStrategy::TwoPass,
        )
    }

    /// Build with an explicit layout/strategy (coalescing ablation).
    /// Panicking wrapper around [`Self::try_with_layout`].
    pub fn with_layout(
        gpu: &'g Gpu,
        a: &DenseMatrix<T>,
        b: &[T],
        n_active: usize,
        basis0: &[usize],
        layout: Layout,
        gemv_t_strategy: GemvTStrategy,
    ) -> Self {
        Self::try_with_layout(gpu, a, b, n_active, basis0, layout, gemv_t_strategy)
            .unwrap_or_else(|e| panic!("{e} while building GPU backend"))
    }

    /// Fallible [`Self::with_layout`]: every setup upload and allocation
    /// goes through the `try_*` device API and propagates
    /// [`BackendError::Device`].
    pub fn try_with_layout(
        gpu: &'g Gpu,
        a: &DenseMatrix<T>,
        b: &[T],
        n_active: usize,
        basis0: &[usize],
        layout: Layout,
        gemv_t_strategy: GemvTStrategy,
    ) -> Result<Self, BackendError> {
        let m = a.rows();
        assert_eq!(b.len(), m, "rhs length mismatch");
        assert!(n_active <= a.cols(), "n_active exceeds column count");
        if layout == Layout::RowMajor {
            assert_eq!(
                gemv_t_strategy,
                GemvTStrategy::Naive,
                "two-pass gemv_t requires col-major storage"
            );
        }
        let a_active = a.select_cols(&(0..n_active).collect::<Vec<_>>());
        let a_dev = DeviceMatrix::upload(gpu, &a_active, layout)?;
        let binv = DeviceMatrix::identity(gpu, m, layout)?;
        let beta = gpu.try_htod(b)?;
        let pi = gpu.try_alloc(m, T::ZERO)?;
        let d = gpu.try_alloc(n_active, T::ZERO)?;
        let alpha = gpu.try_alloc(m, T::ZERO)?;
        let ratios = gpu.try_alloc(m, T::ZERO)?;
        let costs = gpu.try_alloc(n_active, T::ZERO)?;
        let cb = gpu.try_alloc(m, T::ZERO)?;
        let xb_host: Vec<u32> = basis0.iter().map(|&j| j as u32).collect();
        let xb = gpu.try_htod(&xb_host)?;
        let stage = gpu.try_alloc(2, T::ZERO)?;
        let work = gpu.try_alloc(m, T::ZERO)?;
        let alpha_tmp = gpu.try_alloc(m, T::ZERO)?;
        let lu_scratch = gpu.try_alloc(m, T::ZERO)?;
        Ok(GpuDenseBackend {
            gpu,
            a_host: a.clone(),
            b_host: b.to_vec(),
            a_dev,
            binv,
            beta,
            pi,
            d,
            alpha,
            ratios,
            costs,
            cb,
            xb,
            n_active,
            m,
            layout,
            gemv_t_strategy,
            stage,
            fuse: true,
            rep: BasisRepresentation::ExplicitInverse,
            etas: Vec::new(),
            pool: BufferPool::new(),
            work,
            alpha_tmp,
            lu: None,
            lu_dev: None,
            lu_scratch,
            lu_report: crate::backend::LuReport::default(),
            shift: T::ZERO,
        })
    }

    /// The device handle (for counter snapshots in experiments).
    pub fn gpu(&self) -> &Gpu {
        self.gpu
    }

    /// Toggle fused launch accounting (the F6 ablation switch). Default on.
    pub fn set_fuse_launches(&mut self, on: bool) {
        self.fuse = on;
    }
}

impl<T: Scalar> Backend<T> for GpuDenseBackend<'_, T> {
    fn name(&self) -> &'static str {
        "gpu-dense"
    }

    fn clock(&self) -> SimTime {
        self.gpu.elapsed()
    }

    fn m(&self) -> usize {
        self.m
    }

    fn n_active(&self) -> usize {
        self.n_active
    }

    fn set_phase_costs(&mut self, c: &[T]) -> Result<(), BackendError> {
        assert!(c.len() >= self.n_active, "phase costs too short");
        self.gpu
            .try_htod_into(&c[..self.n_active], &mut self.costs)?;
        Ok(())
    }

    fn set_basic_cost(&mut self, row: usize, cost: T) -> Result<(), BackendError> {
        self.gpu.try_htod_elem(&mut self.cb, row, cost)?;
        Ok(())
    }

    fn set_basic_col(&mut self, row: usize, col: usize) -> Result<(), BackendError> {
        self.gpu.try_htod_elem(&mut self.xb, row, col as u32)?;
        Ok(())
    }

    fn compute_btran(&mut self) -> Result<(), BackendError> {
        if self.rep == BasisRepresentation::SparseLU {
            // π = B₀⁻ᵀ (E_k…E_1)ᵀ c_B: eta sweep newest-first, then two
            // sparse triangular solves against the resident factors. With
            // no factorization yet, B₀ = I and the solves vanish.
            gblas::copy(self.gpu, self.cb.view(), self.work.view_mut())?;
            for (p, eta) in self.etas.iter().rev() {
                self.gpu.try_launch(
                    LaunchConfig::for_elems(self.m, BLOCK),
                    &EtaBtranK {
                        y: self.work.view_mut(),
                        eta: eta.view(),
                        p: *p,
                        m: self.m,
                    },
                )?;
            }
            if let Some(lu_dev) = &self.lu_dev {
                lu_dev
                    .btran(self.gpu, self.work.view_mut(), self.lu_scratch.view_mut())
                    .map_err(BackendError::Device)?;
            }
            gblas::copy(self.gpu, self.work.view(), self.pi.view_mut())?;
            return Ok(());
        }
        if self.rep == BasisRepresentation::ProductForm {
            // π = ((c_Bᵀ E_k…E_1) B₀⁻¹)ᵀ: copy c_B into the work buffer,
            // sweep the eta chain newest-first (each touches one entry),
            // then one transposed gemv against the frozen B₀⁻¹.
            if self.fuse {
                let mut fl = self.gpu.try_begin_fused("btran_eta_fused")?;
                let mut l = Launcher::Fused(&mut fl);
                gblas::copy_on(&mut l, self.cb.view(), self.work.view_mut())?;
                for (p, eta) in self.etas.iter().rev() {
                    l.try_launch(
                        LaunchConfig::for_elems(self.m, BLOCK),
                        &EtaBtranK {
                            y: self.work.view_mut(),
                            eta: eta.view(),
                            p: *p,
                            m: self.m,
                        },
                    )?;
                }
                gblas::gemv_t_on(
                    &mut l,
                    T::ONE,
                    &self.binv,
                    self.work.view(),
                    T::ZERO,
                    self.pi.view_mut(),
                    self.gemv_t_strategy,
                )?;
                fl.finish();
            } else {
                gblas::copy(self.gpu, self.cb.view(), self.work.view_mut())?;
                for (p, eta) in self.etas.iter().rev() {
                    self.gpu.try_launch(
                        LaunchConfig::for_elems(self.m, BLOCK),
                        &EtaBtranK {
                            y: self.work.view_mut(),
                            eta: eta.view(),
                            p: *p,
                            m: self.m,
                        },
                    )?;
                }
                gblas::gemv_t(
                    self.gpu,
                    T::ONE,
                    &self.binv,
                    self.work.view(),
                    T::ZERO,
                    self.pi.view_mut(),
                    self.gemv_t_strategy,
                )?;
            }
            return Ok(());
        }
        // π = c_Bᵀ B⁻¹  ⇔  π = (B⁻¹)ᵀ c_B.
        if self.fuse {
            let mut fl = self.gpu.try_begin_fused("btran_fused")?;
            gblas::gemv_t_on(
                &mut Launcher::Fused(&mut fl),
                T::ONE,
                &self.binv,
                self.cb.view(),
                T::ZERO,
                self.pi.view_mut(),
                self.gemv_t_strategy,
            )?;
            fl.finish();
        } else {
            gblas::gemv_t(
                self.gpu,
                T::ONE,
                &self.binv,
                self.cb.view(),
                T::ZERO,
                self.pi.view_mut(),
                self.gemv_t_strategy,
            )?;
        }
        Ok(())
    }

    fn compute_pricing_window(&mut self, start: usize, len: usize) -> Result<(), BackendError> {
        assert!(start + len <= self.n_active, "pricing window out of range");
        // d[start..start+len] = c[window] − A[:, window]ᵀπ. The column-block
        // product needs contiguous columns (col-major); the row-major
        // ablation backend always prices the full range.
        if self.fuse {
            let mut fl = self.gpu.try_begin_fused("pricing_fused")?;
            let mut l = Launcher::Fused(&mut fl);
            if self.layout == Layout::ColMajor {
                gblas::copy_on(
                    &mut l,
                    self.costs.view().subview(start, len),
                    self.d.view_mut().subview_mut(start, len),
                )?;
                gblas::gemv_t_cols_on(
                    &mut l,
                    -T::ONE,
                    &self.a_dev,
                    start,
                    len,
                    self.pi.view(),
                    T::ONE,
                    self.d.view_mut().subview_mut(start, len),
                    self.gemv_t_strategy,
                )?;
            } else {
                gblas::copy_on(&mut l, self.costs.view(), self.d.view_mut())?;
                gblas::gemv_t_on(
                    &mut l,
                    -T::ONE,
                    &self.a_dev,
                    self.pi.view(),
                    T::ONE,
                    self.d.view_mut(),
                    self.gemv_t_strategy,
                )?;
            }
            fl.finish();
        } else if self.layout == Layout::ColMajor {
            gblas::copy(
                self.gpu,
                self.costs.view().subview(start, len),
                self.d.view_mut().subview_mut(start, len),
            )?;
            gblas::gemv_t_cols(
                self.gpu,
                -T::ONE,
                &self.a_dev,
                start,
                len,
                self.pi.view(),
                T::ONE,
                self.d.view_mut().subview_mut(start, len),
                self.gemv_t_strategy,
            )?;
        } else {
            gblas::copy(self.gpu, self.costs.view(), self.d.view_mut())?;
            gblas::gemv_t(
                self.gpu,
                -T::ONE,
                &self.a_dev,
                self.pi.view(),
                T::ONE,
                self.d.view_mut(),
                self.gemv_t_strategy,
            )?;
        }
        Ok(())
    }

    fn entering_dantzig_window(
        &mut self,
        tol: T,
        start: usize,
        len: usize,
    ) -> Result<Option<(usize, T)>, BackendError> {
        assert!(
            start + len <= self.n_active,
            "selection window out of range"
        );
        let mask = MaskBasicK {
            d: self.d.view_mut(),
            xb: self.xb.view(),
            m: self.m,
            n_active: self.n_active,
        };
        let (v, q) = if self.fuse {
            // One fused group for mask + the whole argmin chain; the
            // (value, index) pair comes back in a single staged transfer.
            let mut fl = self.gpu.try_begin_fused("select_fused")?;
            let mut l = Launcher::Fused(&mut fl);
            l.try_launch(LaunchConfig::for_elems(self.m, BLOCK), &mask)?;
            gblas::argmin_into(
                &mut l,
                self.d.view().subview(start, len),
                len,
                &mut self.stage,
                0,
                1,
            )?;
            fl.finish();
            let s = self.gpu.try_dtoh_range(&self.stage, 0, 2)?;
            (s[0], s[1].to_f64() as usize)
        } else {
            self.gpu
                .try_launch(LaunchConfig::for_elems(self.m, BLOCK), &mask)?;
            let (v, q) = gblas::argmin(self.gpu, self.d.view().subview(start, len), len)?;
            (v, q as usize)
        };
        Ok(if v < -tol { Some((start + q, v)) } else { None })
    }

    fn entering_bland(&mut self, tol: T) -> Result<Option<(usize, T)>, BackendError> {
        let mask = MaskBasicK {
            d: self.d.view_mut(),
            xb: self.xb.view(),
            m: self.m,
            n_active: self.n_active,
        };
        let mut idx = self.gpu.try_alloc(self.n_active, u32::MAX)?;
        let map = MapNegIdxK {
            d: self.d.view(),
            tol,
            out: idx.view_mut(),
            n: self.n_active,
        };
        if self.fuse {
            // Mask + map + index min-reduce + the d_q gather as one fused
            // group; (q, d_q) returns in a single staged transfer.
            let mut fl = self.gpu.try_begin_fused("bland_fused")?;
            let mut l = Launcher::Fused(&mut fl);
            l.try_launch(LaunchConfig::for_elems(self.m, BLOCK), &mask)?;
            l.try_launch(LaunchConfig::for_elems(self.n_active, BLOCK), &map)?;
            gblas::reduce_u32_min_into(
                &mut l,
                idx.view(),
                self.n_active,
                self.stage.view_mut().subview_mut(0, 1),
            )?;
            l.try_launch(
                LaunchConfig::for_elems(1, 1),
                &GatherAtK {
                    src: self.d.view(),
                    idx: self.stage.view().subview(0, 1),
                    out: self.stage.view_mut().subview_mut(1, 1),
                    n: self.n_active,
                },
            )?;
            fl.finish();
            let s = self.gpu.try_dtoh_range(&self.stage, 0, 2)?;
            // u32::MAX (no candidate) stages as 2³², past any real index.
            if s[0].to_f64() >= self.n_active as f64 {
                return Ok(None);
            }
            Ok(Some((s[0].to_f64() as usize, s[1])))
        } else {
            self.gpu
                .try_launch(LaunchConfig::for_elems(self.m, BLOCK), &mask)?;
            self.gpu
                .try_launch(LaunchConfig::for_elems(self.n_active, BLOCK), &map)?;
            let q = gblas::reduce_u32_min(self.gpu, idx.view(), self.n_active)?;
            if q == u32::MAX {
                return Ok(None);
            }
            // Fetch d_q (one scalar over PCIe, as the era's codes did).
            let dq = self.gpu.try_dtoh_range(&self.d, q as usize, 1)?[0];
            Ok(Some((q as usize, dq)))
        }
    }

    fn compute_alpha(&mut self, q: usize) -> Result<(), BackendError> {
        assert!(q < self.n_active, "entering column out of active range");
        if self.rep == BasisRepresentation::SparseLU {
            // α = E_k…E_1 B₀⁻¹ a_q: seed α with the entering column, two
            // sparse triangular solves, then the eta sweep oldest-first.
            match self.layout {
                Layout::ColMajor => {
                    gblas::copy(self.gpu, self.a_dev.col_view(q), self.alpha.view_mut())?;
                }
                Layout::RowMajor => {
                    self.gpu.try_launch(
                        LaunchConfig::for_elems(self.m, BLOCK),
                        &ColExtractRowMajorK {
                            mat: self.a_dev.view(),
                            rows: self.m,
                            cols: self.n_active,
                            j: q,
                            out: self.alpha.view_mut(),
                        },
                    )?;
                }
            }
            if let Some(lu_dev) = &self.lu_dev {
                lu_dev
                    .ftran(self.gpu, self.alpha.view_mut(), self.lu_scratch.view_mut())
                    .map_err(BackendError::Device)?;
            }
            for (p, eta) in &self.etas {
                self.gpu.try_launch(
                    LaunchConfig::for_elems(self.m, BLOCK),
                    &EtaFtranK {
                        x: self.alpha.view(),
                        eta: eta.view(),
                        p: *p,
                        out: self.alpha_tmp.view_mut(),
                        m: self.m,
                    },
                )?;
                std::mem::swap(&mut self.alpha, &mut self.alpha_tmp);
            }
            return Ok(());
        }
        match self.layout {
            Layout::ColMajor => {
                let aq = self.a_dev.col_view(q);
                gblas::gemv_n(
                    self.gpu,
                    T::ONE,
                    &self.binv,
                    aq,
                    T::ZERO,
                    self.alpha.view_mut(),
                )?;
            }
            Layout::RowMajor => {
                // No contiguous column view exists; extract the column with
                // a strided kernel first (honest extra cost of this layout).
                let mut aq = self.gpu.try_alloc(self.m, T::ZERO)?;
                self.gpu.try_launch(
                    LaunchConfig::for_elems(self.m, BLOCK),
                    &ColExtractRowMajorK {
                        mat: self.a_dev.view(),
                        rows: self.m,
                        cols: self.n_active,
                        j: q,
                        out: aq.view_mut(),
                    },
                )?;
                gblas::gemv_n(
                    self.gpu,
                    T::ONE,
                    &self.binv,
                    aq.view(),
                    T::ZERO,
                    self.alpha.view_mut(),
                )?;
            }
        }
        if self.rep == BasisRepresentation::ProductForm {
            // FTRAN tail: α ← E_k…E_1 α, oldest-first, ping-ponging between
            // α and its scratch partner so row p is never read after write.
            for (p, eta) in &self.etas {
                self.gpu.try_launch(
                    LaunchConfig::for_elems(self.m, BLOCK),
                    &EtaFtranK {
                        x: self.alpha.view(),
                        eta: eta.view(),
                        p: *p,
                        out: self.alpha_tmp.view_mut(),
                        m: self.m,
                    },
                )?;
                std::mem::swap(&mut self.alpha, &mut self.alpha_tmp);
            }
        }
        Ok(())
    }

    fn ratio_test(&mut self, pivot_tol: T) -> Result<RatioOutcome<T>, BackendError> {
        if self.m == 0 {
            // Zero-row programs: nothing can block the entering variable.
            return Ok(RatioOutcome::Unbounded);
        }
        let ratio = RatioK {
            alpha: self.alpha.view(),
            beta: self.beta.view(),
            tol: pivot_tol,
            shift: self.shift,
            out: self.ratios.view_mut(),
            m: self.m,
        };
        let (theta, p) = if self.fuse {
            // Ratio map + argmin chain as one fused group; (θ, p) comes
            // back in a single staged transfer.
            let mut fl = self.gpu.try_begin_fused("ratio_fused")?;
            let mut l = Launcher::Fused(&mut fl);
            l.try_launch(LaunchConfig::for_elems(self.m, BLOCK), &ratio)?;
            gblas::argmin_into(&mut l, self.ratios.view(), self.m, &mut self.stage, 0, 1)?;
            fl.finish();
            let s = self.gpu.try_dtoh_range(&self.stage, 0, 2)?;
            (s[0], s[1].to_f64() as usize)
        } else {
            self.gpu
                .try_launch(LaunchConfig::for_elems(self.m, BLOCK), &ratio)?;
            let (theta, p) = gblas::argmin(self.gpu, self.ratios.view(), self.m)?;
            (theta, p as usize)
        };
        Ok(if theta.is_finite() {
            RatioOutcome::Pivot { p, theta }
        } else {
            RatioOutcome::Unbounded
        })
    }

    fn update(&mut self, p: usize, theta: T) -> Result<(), BackendError> {
        let upd = UpdateBetaK {
            beta: self.beta.view_mut(),
            alpha: self.alpha.view(),
            theta,
            p,
            m: self.m,
        };
        if matches!(
            self.rep,
            BasisRepresentation::ProductForm | BasisRepresentation::SparseLU
        ) {
            // β update + eta construction into a pooled device buffer; the
            // frozen B₀ anchor (dense inverse or LU factors) is untouched,
            // so no O(m²) kernel here.
            let mut eta = self.pool.take(self.gpu, self.m, T::ZERO)?;
            let build = BuildEtaK {
                alpha: self.alpha.view(),
                p,
                out: eta.view_mut(),
                m: self.m,
            };
            if self.fuse {
                let mut fl = self.gpu.try_begin_fused("update_eta_fused")?;
                let mut l = Launcher::Fused(&mut fl);
                l.try_launch(LaunchConfig::for_elems(self.m, BLOCK), &upd)?;
                l.try_launch(LaunchConfig::for_elems(self.m, BLOCK), &build)?;
                fl.finish();
            } else {
                self.gpu
                    .try_launch(LaunchConfig::for_elems(self.m, BLOCK), &upd)?;
                self.gpu
                    .try_launch(LaunchConfig::for_elems(self.m, BLOCK), &build)?;
            }
            self.etas.push((p, eta));
            return Ok(());
        }
        if self.fuse {
            // β update + the rank-1 pivot chain (η scaling, pivot-row
            // extraction, elimination) as one fused group.
            let mut fl = self.gpu.try_begin_fused("update_fused")?;
            let mut l = Launcher::Fused(&mut fl);
            l.try_launch(LaunchConfig::for_elems(self.m, BLOCK), &upd)?;
            gblas::pivot_update_on(&mut l, &mut self.binv, self.alpha.view(), p)?;
            fl.finish();
        } else {
            self.gpu
                .try_launch(LaunchConfig::for_elems(self.m, BLOCK), &upd)?;
            gblas::pivot_update(self.gpu, &mut self.binv, self.alpha.view(), p)?;
        }
        Ok(())
    }

    fn beta(&mut self) -> Result<Vec<T>, BackendError> {
        Ok(self.gpu.try_dtoh(&self.beta)?)
    }

    fn objective_now(&mut self) -> Result<T, BackendError> {
        Ok(gblas::dot(self.gpu, self.cb.view(), self.beta.view())?)
    }

    fn refactorize(&mut self, basis: &[usize]) -> Result<(), BackendError> {
        // Retire the eta chain into the pool: the rebuilt B⁻¹ absorbs it,
        // and the buffers get recycled by the next round of pivots.
        for (_, eta) in self.etas.drain(..) {
            self.pool.give(eta);
        }
        if self.rep == BasisRepresentation::SparseLU {
            return self.refactorize_sparse_lu(basis);
        }
        // Fast path: device-resident Gauss–Jordan reinversion over [B | I]
        // (col-major only; no pivoting — falls back to the pivoting host
        // path on a small pivot). A *device* failure propagates; only the
        // numerical "no stable pivot" outcome falls back.
        if self.layout == Layout::ColMajor {
            match self.refactorize_on_device(basis) {
                Ok(true) => return Ok(()),
                Ok(false) => {} // small pivot or odd basis column → host path
                Err(e) => return Err(BackendError::Device(e)),
            }
        }
        self.refactorize_on_host(basis)
    }

    fn alpha_at(&mut self, i: usize) -> Result<T, BackendError> {
        Ok(self.gpu.try_dtoh_range(&self.alpha, i, 1)?[0])
    }

    fn set_representation(&mut self, rep: BasisRepresentation) {
        debug_assert!(
            self.etas.is_empty(),
            "representation must be chosen before the first pivot"
        );
        self.rep = rep;
    }

    fn representation(&self) -> BasisRepresentation {
        self.rep
    }

    fn eta_chain_len(&self) -> usize {
        self.etas.len()
    }

    fn lu_stats(&self) -> Option<crate::backend::LuReport> {
        (self.rep == BasisRepresentation::SparseLU && self.lu.is_some()).then_some(self.lu_report)
    }

    fn set_ratio_shift(&mut self, delta: f64) {
        self.shift = T::from_f64(delta.max(0.0));
    }
}

impl<T: Scalar> GpuDenseBackend<'_, T> {
    /// Device-side reinversion: assemble B from the resident active columns
    /// (artificials are unit columns), invert in place, recompute β = B⁻¹b.
    /// `Ok(false)` means "no stable pivot / unrecognized basis column — use
    /// the host path"; `Err` is a genuine device failure.
    fn refactorize_on_device(&mut self, basis: &[usize]) -> Result<bool, gpu_sim::DeviceError> {
        use super::gpu_kernels::ClampNonNegK;
        let m = self.m;
        let mut bmat = DeviceMatrix::<T>::zeros(self.gpu, m, m, Layout::ColMajor)?;
        for (r, &j) in basis.iter().enumerate() {
            if j < self.n_active {
                gblas::copy(
                    self.gpu,
                    self.a_dev.col_view(j),
                    bmat.view_mut().subview_mut(r * m, m),
                )?;
            } else {
                // Artificial column of row `row`: e_row, written as one
                // scalar on top of the zero-initialized column.
                let row = match basis_artificial_row(&self.a_host, j) {
                    Some(row) => row,
                    None => return Ok(false),
                };
                let view = bmat.view_mut();
                view.set(r * m + row, T::ONE);
                self.gpu.charge(
                    TimeCategory::TransferH2D,
                    gpu_sim::timing::transfer_time(self.gpu.spec(), T::BYTES),
                );
            }
        }
        let pivot_tol = T::from_f64(if T::IS_F64 { 1e-11 } else { 1e-6 });
        let inv = match gblas::invert_gauss_jordan(self.gpu, &bmat, pivot_tol)? {
            Some(inv) => inv,
            None => return Ok(false),
        };
        self.binv = inv;
        // β = B⁻¹ b, clamped at zero.
        let b_dev = self.gpu.try_htod(&self.b_host)?;
        gblas::gemv_n(
            self.gpu,
            T::ONE,
            &self.binv,
            b_dev.view(),
            T::ZERO,
            self.beta.view_mut(),
        )?;
        self.gpu.try_launch(
            LaunchConfig::for_elems(m, BLOCK),
            &ClampNonNegK {
                x: self.beta.view_mut(),
                n: m,
            },
        )?;
        Ok(true)
    }

    /// Sparse-LU reinversion: factorize the basis on the host (Markowitz +
    /// threshold pivoting, charged at the modeled CPU rate), upload the
    /// factors, and recompute β = B₀⁻¹b through them. The device keeps no
    /// dense B⁻¹ at all under this representation.
    fn refactorize_sparse_lu(&mut self, basis: &[usize]) -> Result<(), BackendError> {
        use crate::backends::cpu_sparse::LU_TAU;
        let m = self.m;
        let cols: Vec<Vec<(usize, f64)>> = basis
            .iter()
            .map(|&j| {
                self.a_host
                    .col(j)
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| **v != T::ZERO)
                    .map(|(i, v)| (i, v.to_f64()))
                    .collect()
            })
            .collect();
        let lu =
            linalg::SparseLu::<T>::factorize(m, &cols, LU_TAU).ok_or(BackendError::Singular)?;
        let s = lu.stats();
        // Charge the host-side factorization at the modeled CPU rate so the
        // GPU clock stays the single timeline (same policy as the dense
        // host reinversion path).
        let cpu = linalg::CpuModel::core2_era();
        self.gpu.charge(
            TimeCategory::KernelBody,
            cpu.op_time(
                s.factor_flops + lu.solve_flops(),
                (s.factor_nnz as u64) * (T::BYTES + 4),
                true,
            ),
        );
        self.lu_report.fill_in = self.lu_report.fill_in.max(s.fill_in as u64);
        self.lu_report.refactor_nnz = self.lu_report.refactor_nnz.max(s.factor_nnz as u64);
        self.lu_report.markowitz_rejections += s.markowitz_rejections as u64;
        // β = B₀⁻¹ b on the host through the fresh factors, clamped at
        // zero, then one H2D upload (charged).
        let mut beta_h = self.b_host.clone();
        let mut scratch = vec![T::ZERO; m];
        lu.ftran_in_place(&mut beta_h, &mut scratch);
        for v in beta_h.iter_mut() {
            *v = v.maxs(T::ZERO);
        }
        self.lu_dev = Some(gblas::DeviceLu::upload(self.gpu, &lu).map_err(BackendError::Device)?);
        self.lu = Some(lu);
        self.gpu.try_htod_into(&beta_h, &mut self.beta)?;
        Ok(())
    }

    /// Host-side pivoting reinversion (fallback; fails only on a singular
    /// basis or a device fault during the re-upload).
    fn refactorize_on_host(&mut self, basis: &[usize]) -> Result<(), BackendError> {
        let m = self.m;
        // Reinversion runs on the host in f64 (the era's codes pulled the
        // basis back for a dgetrf-style refactor), then re-uploads B⁻¹ and
        // β — both PCIe transfers are charged below via htod_into.
        let mut bmat = DenseMatrix::<f64>::zeros(m, m);
        for (r, &j) in basis.iter().enumerate() {
            for i in 0..m {
                bmat.set(i, r, self.a_host.get(i, j).to_f64());
            }
        }
        let inv = linalg::blas::gauss_jordan_invert(&bmat).ok_or(BackendError::Singular)?;
        // Charge the host-side inversion at the modeled CPU rate so the GPU
        // clock stays the single timeline.
        let cpu = linalg::CpuModel::core2_era();
        let m3 = (m as u64).pow(3);
        self.gpu.charge(
            TimeCategory::KernelBody,
            cpu.op_time(2 * m3, (m as u64 * m as u64) * 8, true),
        );

        let mut inv_t = DenseMatrix::<T>::zeros(m, m);
        for j in 0..m {
            for i in 0..m {
                inv_t.set(i, j, T::from_f64(inv.get(i, j)));
            }
        }
        self.binv = DeviceMatrix::upload(self.gpu, &inv_t, self.layout)?;
        let mut beta_h = vec![T::ZERO; m];
        linalg::blas::gemv_n(T::ONE, &inv_t, &self.b_host, T::ZERO, &mut beta_h);
        for v in beta_h.iter_mut() {
            *v = v.maxs(T::ZERO);
        }
        self.gpu.try_htod_into(&beta_h, &mut self.beta)?;
        Ok(())
    }
}

/// Row carrying the single +1 of an identity (artificial) column, found by
/// scanning the host copy.
fn basis_artificial_row<T: Scalar>(a: &DenseMatrix<T>, j: usize) -> Option<usize> {
    let mut row = None;
    for (i, &v) in a.col(j).iter().enumerate() {
        if v == T::ONE && row.is_none() {
            row = Some(i);
        } else if v != T::ZERO && v != T::ONE {
            return None;
        }
    }
    row
}

/// Column extraction from a row-major device matrix (strided, uncoalesced —
/// part of the price the F4 ablation pays).
struct ColExtractRowMajorK<T: Scalar> {
    mat: gpu_sim::DView<T>,
    rows: usize,
    cols: usize,
    j: usize,
    out: gpu_sim::DViewMut<T>,
}

impl<T: Scalar> gpu_sim::Kernel for ColExtractRowMajorK<T> {
    fn name(&self) -> &'static str {
        "col_extract_rm"
    }
    fn run(&self, t: &gpu_sim::ThreadCtx) {
        let i = t.global_id();
        if i < self.rows {
            self.out.set(i, self.mat.get(self.j + i * self.cols));
        }
    }
    fn cost(&self, cfg: &LaunchConfig) -> gpu_sim::KernelCost {
        let m = self.rows as u64;
        gpu_sim::KernelCost::new()
            .read(gpu_sim::AccessPattern::strided::<T>(
                m,
                self.cols as u64 * T::BYTES,
            ))
            .write(gpu_sim::AccessPattern::coalesced::<T>(m))
            .active_threads(cfg, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn wyndor_std() -> (DenseMatrix<f64>, Vec<f64>, Vec<f64>, Vec<usize>) {
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0, 1.0, 0.0],
            vec![3.0, 2.0, 0.0, 0.0, 1.0],
        ]);
        (
            a,
            vec![4.0, 12.0, 18.0],
            vec![-3.0, -5.0, 0.0, 0.0, 0.0],
            vec![2, 3, 4],
        )
    }

    #[test]
    fn gpu_iteration_matches_cpu_backend() {
        use crate::backends::CpuDenseBackend;
        let (a, b, c, basis0) = wyndor_std();
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let mut gb = GpuDenseBackend::new(&gpu, &a, &b, 5, &basis0);
        let mut cb = CpuDenseBackend::new(&a, &b, 5, &basis0);
        for be in [
            &mut gb as &mut dyn Backend<f64>,
            &mut cb as &mut dyn Backend<f64>,
        ] {
            be.set_phase_costs(&c).unwrap();
            for (r, &j) in basis0.iter().enumerate() {
                be.set_basic_cost(r, c[j]).unwrap();
            }
            be.compute_pricing().unwrap();
        }
        let (gq, gd) = gb.entering_dantzig(1e-9).unwrap().unwrap();
        let (cq, cd) = cb.entering_dantzig(1e-9).unwrap().unwrap();
        assert_eq!(gq, cq);
        assert_eq!(gd, cd);
        gb.compute_alpha(gq).unwrap();
        cb.compute_alpha(cq).unwrap();
        let gr = gb.ratio_test(1e-9).unwrap();
        let cr = cb.ratio_test(1e-9).unwrap();
        assert_eq!(gr, cr);
        if let RatioOutcome::Pivot { p, theta } = gr {
            gb.update(p, theta).unwrap();
            cb.update(p, theta).unwrap();
            gb.set_basic_col(p, gq).unwrap();
            gb.set_basic_cost(p, c[gq]).unwrap();
            cb.set_basic_col(p, cq).unwrap();
            cb.set_basic_cost(p, c[cq]).unwrap();
        }
        assert_eq!(gb.beta().unwrap(), cb.beta().unwrap());
        assert_eq!(gb.objective_now().unwrap(), cb.objective_now().unwrap());
        // The GPU backend actually used the device. Fused groups fold
        // member kernels into one launch, so count both.
        let counters = gpu.counters();
        assert!(counters.kernels_launched + counters.fused_kernels_folded > 10);
        assert!(counters.fused_groups >= 4, "iteration chains fuse");
        assert!(counters.d2h_count >= 2);
    }

    #[test]
    fn refactorize_round_trips_binv() {
        let (a, b, _c, basis0) = wyndor_std();
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let mut gb = GpuDenseBackend::new(&gpu, &a, &b, 5, &basis0);
        // Pivot column 0 into row 0, then refactorize and check β = B⁻¹b.
        gb.set_phase_costs(&[-3.0, -5.0, 0.0, 0.0, 0.0]).unwrap();
        gb.compute_alpha(0).unwrap();
        gb.update(0, 4.0).unwrap();
        gb.set_basic_col(0, 0).unwrap();
        gb.refactorize(&[0, 3, 4]).unwrap();
        let beta = gb.beta().unwrap();
        // B = [a0 | e1 | e2] → β = (4, 12, 18 − 3·4) = (4, 12, 6).
        assert_eq!(beta, vec![4.0, 12.0, 6.0]);
    }

    #[test]
    fn device_refactorization_handles_artificial_columns() {
        // Basis mixing a structural column with artificials (unit columns
        // beyond n_active) — the device path must assemble e_r correctly.
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 1.0, 0.0], // cols: x, y | artificials u1, u2
            vec![1.0, 3.0, 0.0, 1.0],
        ]);
        let b = vec![5.0, 10.0];
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let mut gb = GpuDenseBackend::new(&gpu, &a, &b, 2, &[2, 3]);
        // Basis = {x (col 0), artificial u2 (col 3)} → B = [[2,0],[1,1]].
        gb.refactorize(&[0, 3]).unwrap();
        let beta = gb.beta().unwrap();
        // B⁻¹ b = [[0.5,0],[-0.5,1]]·(5,10) = (2.5, 7.5).
        assert!((beta[0] - 2.5).abs() < 1e-12, "{beta:?}");
        assert!((beta[1] - 7.5).abs() < 1e-12, "{beta:?}");
        // The device path was used: no big H2D of a host-inverted matrix —
        // check it stayed resident by confirming d2h traffic is only the
        // pivot probes + the beta download (m pivots + m elements).
        let c = gpu.counters();
        assert!(c.d2h_count >= 2, "pivot probes happen over PCIe");
    }

    #[test]
    fn device_and_host_refactorization_agree() {
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 0.5, 1.0, 0.0, 0.0],
            vec![1.0, 5.0, 1.0, 0.0, 1.0, 0.0],
            vec![0.5, 1.0, 6.0, 0.0, 0.0, 1.0],
        ]);
        let b = vec![3.0, 7.0, 11.0];
        let basis = vec![0usize, 1, 2];

        let gpu1 = Gpu::new(DeviceSpec::gtx280());
        let mut dev = GpuDenseBackend::new(&gpu1, &a, &b, 3, &[3, 4, 5]);
        assert!(dev.refactorize_on_device(&basis).unwrap());
        let beta_dev = dev.beta().unwrap();

        let gpu2 = Gpu::new(DeviceSpec::gtx280());
        let mut host = GpuDenseBackend::new(&gpu2, &a, &b, 3, &[3, 4, 5]);
        host.refactorize_on_host(&basis).unwrap();
        let beta_host = host.beta().unwrap();

        for (d, h) in beta_dev.iter().zip(&beta_host) {
            assert!((d - h).abs() < 1e-9, "{beta_dev:?} vs {beta_host:?}");
        }
    }

    #[test]
    fn row_major_backend_produces_same_values() {
        let (a, b, c, basis0) = wyndor_std();
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let mut gb = GpuDenseBackend::with_layout(
            &gpu,
            &a,
            &b,
            5,
            &basis0,
            Layout::RowMajor,
            GemvTStrategy::Naive,
        );
        gb.set_phase_costs(&c).unwrap();
        for (r, &j) in basis0.iter().enumerate() {
            gb.set_basic_cost(r, c[j]).unwrap();
        }
        gb.compute_pricing().unwrap();
        let (q, d) = gb.entering_dantzig(1e-9).unwrap().unwrap();
        assert_eq!((q, d), (1, -5.0));
        gb.compute_alpha(q).unwrap();
        assert_eq!(gb.alpha_at(1).unwrap(), 2.0);
    }
}
