//! Validation of kernel cost descriptors against hand-derived traffic.
//!
//! The simulator trusts each kernel's declared access patterns; these tests
//! pin the declared transaction/byte counts for every simublas kernel on
//! shapes small enough to count by hand, so a drifting descriptor (the
//! classic simulator bug) fails loudly.

use gpu_sim::{DeviceSpec, Gpu};
use linalg::gpu::{self as gblas, DeviceMatrix, GemvTStrategy, Layout};
use linalg::DenseMatrix;

const WARP: u64 = 32;

fn gpu() -> Gpu {
    Gpu::new(DeviceSpec::gtx280())
}

/// Transactions of a perfectly coalesced f32 pattern of `n` accesses.
fn coalesced_tx(n: u64) -> u64 {
    // Full warps: 1 transaction each (32 × 4 B = 128 B); tail: 1.
    n / WARP + u64::from(!n.is_multiple_of(WARP))
}

#[test]
fn axpy_traffic_matches_hand_count() {
    let g = gpu();
    let n = 1024u64;
    let x = g.htod(&vec![1.0f32; n as usize]);
    let mut y = g.htod(&vec![2.0f32; n as usize]);
    g.reset_counters();
    gblas::axpy(&g, 0.5f32, x.view(), y.view_mut()).unwrap();
    let c = g.counters();
    // Reads: x + y coalesced; write: y coalesced.
    assert_eq!(c.transactions, 3 * coalesced_tx(n));
    assert_eq!(c.mem_bytes, 3 * n * 4);
    assert_eq!(c.flops, 2 * n);
    assert_eq!(c.kernels_launched, 1);
}

#[test]
fn gemv_n_col_major_traffic() {
    let g = gpu();
    let (m, n) = (64usize, 48usize);
    let a = DeviceMatrix::upload(&g, &DenseMatrix::<f32>::zeros(m, n), Layout::ColMajor).unwrap();
    let x = g.htod(&vec![1.0f32; n]);
    let mut y = g.htod(&vec![0.0f32; m]);
    g.reset_counters();
    gblas::gemv_n(&g, 1.0f32, &a, x.view(), 0.0, y.view_mut()).unwrap();
    let c = g.counters();
    let mn = (m * n) as u64;
    // A coalesced (mn), x broadcast (1 tx per warp-instruction), y read +
    // write coalesced (m each).
    let expect = coalesced_tx(mn) + mn.div_ceil(WARP) + 2 * coalesced_tx(m as u64);
    assert_eq!(c.transactions, expect);
    assert_eq!(c.flops, 2 * mn + 2 * m as u64);
}

#[test]
fn gemv_n_row_major_pays_strided_reads() {
    let g = gpu();
    let (m, n) = (64usize, 48usize);
    let host = DenseMatrix::<f32>::zeros(m, n);
    let mut tx = Vec::new();
    for layout in [Layout::ColMajor, Layout::RowMajor] {
        let g2 = gpu();
        let a = DeviceMatrix::upload(&g2, &host, layout).unwrap();
        let x = g2.htod(&vec![1.0f32; n]);
        let mut y = g2.htod(&vec![0.0f32; m]);
        g2.reset_counters();
        gblas::gemv_n(&g2, 1.0f32, &a, x.view(), 0.0, y.view_mut()).unwrap();
        tx.push(g2.counters().transactions);
    }
    let _ = (g, m);
    // Row-major: lanes stride by n×4 = 192 B → every lane its own segment:
    // mn transactions on A alone. Must dominate the col-major total.
    assert!(
        tx[1] > 20 * tx[0] / 2,
        "row-major {} vs col-major {}",
        tx[1],
        tx[0]
    );
    let mn = (64 * 48) as u64;
    assert!(
        tx[1] >= mn,
        "row-major must pay ≥ one transaction per element"
    );
}

#[test]
fn pivot_update_traffic_is_quadratic_with_broadcast_rowp() {
    let g = gpu();
    let m = 96usize;
    let mut binv = DeviceMatrix::<f32>::identity(&g, m, Layout::ColMajor).unwrap();
    let alpha = g.htod(&vec![0.25f32; m]);
    g.reset_counters();
    gblas::pivot_update(&g, &mut binv, alpha.view(), 3).unwrap();
    let c = g.counters();
    let mm = (m * m) as u64;
    let m64 = m as u64;
    // eta kernel: read α coalesced m + broadcast m, write m.
    let eta = 2 * coalesced_tx(m64) + m64.div_ceil(WARP);
    // row extract: strided read m (stride m×4 = 384 B → 1 tx/lane) + write.
    let extract = m64 + coalesced_tx(m64);
    // update: read B⁻¹ + eta coalesced (mm each), rowp broadcast, write mm.
    let update = 3 * coalesced_tx(mm) + mm.div_ceil(WARP);
    assert_eq!(c.transactions, eta + extract + update);
    assert_eq!(c.kernels_launched, 3);
    assert_eq!(c.flops, 2 * m64 + 2 * mm);
}

#[test]
fn two_pass_gemv_t_moves_less_than_naive_on_col_major() {
    let (m, n) = (256usize, 256usize);
    let host = DenseMatrix::<f32>::zeros(m, n);
    let mut stats = Vec::new();
    for strat in [GemvTStrategy::TwoPass, GemvTStrategy::Naive] {
        let g = gpu();
        let a = DeviceMatrix::upload(&g, &host, Layout::ColMajor).unwrap();
        let x = g.htod(&vec![1.0f32; m]);
        let mut y = g.htod(&vec![0.0f32; n]);
        g.reset_counters();
        gblas::gemv_t(&g, 1.0f32, &a, x.view(), 0.0, y.view_mut(), strat).unwrap();
        stats.push(g.counters());
    }
    // Naive: lanes stride by m×4 = 1 KiB on A → mn transactions.
    let mn = (m * n) as u64;
    assert!(stats[1].transactions >= mn);
    // Two-pass keeps A coalesced; its residual cost is the pass-2 strided
    // partial read (n·32 lanes, 128 B apart). Net ≈ 5× fewer transactions
    // at 256×256, growing with m.
    assert!(
        stats[0].transactions * 4 < stats[1].transactions,
        "two-pass {} vs naive {}",
        stats[0].transactions,
        stats[1].transactions
    );
    // And both computed the same thing with the same flop count (±ε for the
    // second-pass accumulation).
    assert!(stats[0].flops >= 2 * mn && stats[1].flops >= 2 * mn);
}

#[test]
fn dot_reduction_traffic_is_linear_with_log_passes() {
    let g = gpu();
    let n = 4096usize;
    let x = g.htod(&vec![1.0f32; n]);
    let y = g.htod(&vec![2.0f32; n]);
    g.reset_counters();
    let r = gblas::dot(&g, x.view(), y.view()).unwrap();
    assert_eq!(r, 2.0 * n as f32);
    let c = g.counters();
    // mul_ew (1) + reduce passes 4096 → 8 → 1 (2 launches).
    assert_eq!(c.kernels_launched, 3);
    // One tiny d2h for the scalar result.
    assert_eq!(c.d2h_count, 1);
    assert_eq!(c.d2h_bytes, 4);
    // Traffic: mul_ew 3n + pass1 (n read + 8 write) + pass2 (8 read + 1
    // write) — bytes at 32 B granularity for the small tails.
    assert!(c.mem_bytes >= (3 * n + n) as u64 * 4);
    assert!(c.mem_bytes <= (4 * n + 200) as u64 * 4);
}

#[test]
fn elapsed_time_scales_sublinearly_then_linearly_with_size() {
    // Launch-overhead floor at small n; bandwidth-bound growth at large n —
    // the simulator must show both regimes for a single kernel type.
    let mut times = Vec::new();
    for &n in &[256usize, 1024, 1 << 20] {
        let g = gpu();
        let x = g.htod(&vec![1.0f32; n]);
        let mut y = g.htod(&vec![1.0f32; n]);
        g.reset_counters();
        gblas::axpy(&g, 1.0f32, x.view(), y.view_mut()).unwrap();
        times.push(g.elapsed().as_nanos());
    }
    // Small sizes: both dominated by the same launch overhead (within 10%).
    assert!((times[0] - times[1]).abs() / times[0] < 0.1);
    // Large size: clearly bandwidth-bound, far above the overhead floor.
    assert!(times[2] > 5.0 * times[0]);
}
