//! Property-based tests of the linear-algebra substrate: CPU BLAS against
//! algebraic identities, GPU kernels against the CPU reference, and the
//! sparse formats against their dense counterparts.

// Indexed loops mirror the textbook formulations being checked.
#![allow(clippy::needless_range_loop)]

use gpu_sim::{DeviceSpec, Gpu};
use linalg::gpu::{self as gblas, DeviceMatrix, GemvTStrategy, Layout};
use linalg::{blas, CooMatrix, CsrMatrix, DenseMatrix};
use proptest::prelude::*;

/// Strategy: a dense matrix with entries in [-4, 4] and bounded shape.
fn matrix(max_dim: usize) -> impl Strategy<Value = DenseMatrix<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-4.0f64..4.0, m * n)
            .prop_map(move |data| DenseMatrix::from_col_major(m, n, data))
    })
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// gemv_t(A, x) == gemv_n(Aᵀ, x) for every shape and content.
    #[test]
    fn gemv_transpose_identity(a in matrix(12)) {
        let x: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut y1 = vec![0.0; a.cols()];
        let mut y2 = vec![0.0; a.cols()];
        blas::gemv_t(1.0, &a, &x, 0.0, &mut y1);
        blas::gemv_n(1.0, &a.transpose(), &x, 0.0, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!(close(*u, *v, 1e-12));
        }
    }

    /// ger is gemm with rank-1 operands: A + αxyᵀ == A + α·(x as m×1)(yᵀ as 1×n).
    #[test]
    fn ger_is_rank_one_gemm(a in matrix(10)) {
        let x: Vec<f64> = (0..a.rows()).map(|i| (i as f64 + 0.5) * 0.3).collect();
        let y: Vec<f64> = (0..a.cols()).map(|j| 1.0 - j as f64 * 0.2).collect();
        let mut via_ger = a.clone();
        blas::ger(0.75, &x, &y, &mut via_ger);
        let xm = DenseMatrix::from_col_major(a.rows(), 1, x.clone());
        let ym = DenseMatrix::from_col_major(1, a.cols(), y.clone());
        let mut via_gemm = a.clone();
        blas::gemm(0.75, &xm, &ym, 1.0, &mut via_gemm);
        for j in 0..a.cols() {
            for i in 0..a.rows() {
                prop_assert!(close(via_ger.get(i, j), via_gemm.get(i, j), 1e-12));
            }
        }
    }

    /// Inverting then multiplying recovers the identity (well-conditioned
    /// inputs: diagonally dominated).
    #[test]
    fn inverse_roundtrip(base in matrix(10)) {
        let n = base.rows().min(base.cols());
        let mut a = DenseMatrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                a.set(i, j, base.get(i, j) + if i == j { 16.0 } else { 0.0 });
            }
        }
        let inv = blas::gauss_jordan_invert(&a).expect("diagonally dominant");
        let mut prod = DenseMatrix::zeros(n, n);
        blas::gemm(1.0, &inv, &a, 0.0, &mut prod);
        for j in 0..n {
            for i in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!(close(prod.get(i, j), expect, 1e-9));
            }
        }
    }

    /// lu_solve solutions satisfy the system.
    #[test]
    fn lu_solve_satisfies_system(base in matrix(10)) {
        let n = base.rows().min(base.cols());
        let mut a = DenseMatrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                a.set(i, j, base.get(i, j) + if i == j { 16.0 } else { 0.0 });
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos() * 3.0).collect();
        let x = blas::lu_solve(&a, &b).expect("solvable");
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a.get(i, j) * x[j];
            }
            prop_assert!(close(acc, b[i], 1e-9));
        }
    }

    /// Every GPU gemv variant agrees with the CPU reference on every shape.
    #[test]
    fn gpu_gemv_matches_cpu(a in matrix(10)) {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let x_n: Vec<f64> = (0..a.cols()).map(|j| (j as f64 * 0.4).cos()).collect();
        let x_t: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.9).sin()).collect();

        let mut expect_n = vec![0.5; a.rows()];
        blas::gemv_n(1.25, &a, &x_n, -0.5, &mut expect_n);
        let mut expect_t = vec![0.25; a.cols()];
        blas::gemv_t(0.5, &a, &x_t, 2.0, &mut expect_t);

        for layout in [Layout::ColMajor, Layout::RowMajor] {
            let da = DeviceMatrix::upload(&gpu, &a, layout).unwrap();
            let dx = gpu.htod(&x_n);
            let mut dy = gpu.htod(&vec![0.5; a.rows()]);
            gblas::gemv_n(&gpu, 1.25, &da, dx.view(), -0.5, dy.view_mut()).unwrap();
            for (g, c) in gpu.dtoh(&dy).iter().zip(&expect_n) {
                prop_assert!(close(*g, *c, 1e-12), "gemv_n {layout:?}");
            }

            let strategies: &[GemvTStrategy] = if layout == Layout::ColMajor {
                &[GemvTStrategy::Naive, GemvTStrategy::TwoPass]
            } else {
                &[GemvTStrategy::Naive]
            };
            for &strat in strategies {
                let dxt = gpu.htod(&x_t);
                let mut dyt = gpu.htod(&vec![0.25; a.cols()]);
                gblas::gemv_t(&gpu, 0.5, &da, dxt.view(), 2.0, dyt.view_mut(), strat).unwrap();
                for (g, c) in gpu.dtoh(&dyt).iter().zip(&expect_t) {
                    prop_assert!(close(*g, *c, 1e-10), "gemv_t {layout:?} {strat:?}");
                }
            }
        }
    }

    /// Device GEMM agrees with CPU GEMM on arbitrary (small) shapes.
    #[test]
    fn gpu_gemm_matches_cpu(a in matrix(8), salt in 0u64..100) {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let (m, k) = (a.rows(), a.cols());
        let n = (salt as usize % 7) + 1;
        let mut b = DenseMatrix::zeros(k, n);
        for j in 0..n {
            for i in 0..k {
                b.set(i, j, (((i * 5 + j * 3) as u64 + salt) % 9) as f64 - 4.0);
            }
        }
        let mut expect = DenseMatrix::zeros(m, n);
        blas::gemm(1.0, &a, &b, 0.0, &mut expect);

        let da = DeviceMatrix::upload(&gpu, &a, Layout::ColMajor).unwrap();
        let db = DeviceMatrix::upload(&gpu, &b, Layout::ColMajor).unwrap();
        let mut dc = DeviceMatrix::<f64>::zeros(&gpu, m, n, Layout::ColMajor).unwrap();
        gblas::gemm(&gpu, 1.0, &da, &db, 0.0, &mut dc).unwrap();
        let got = dc.download(&gpu).unwrap();
        for j in 0..n {
            for i in 0..m {
                prop_assert!(close(got.get(i, j), expect.get(i, j), 1e-12));
            }
        }
    }

    /// CSR round trip: dense → CSR → dense is the identity (up to exact
    /// zeros), and SpMV agrees with dense gemv.
    #[test]
    fn csr_roundtrip_and_spmv(a in matrix(12)) {
        let csr = CsrMatrix::from_dense(&a, 0.0);
        prop_assert_eq!(csr.to_dense(), a.clone());
        let x: Vec<f64> = (0..a.cols()).map(|j| (j as f64 * 1.3).sin()).collect();
        let mut sparse_y = vec![0.0; a.rows()];
        csr.spmv(&x, &mut sparse_y);
        let mut dense_y = vec![0.0; a.rows()];
        blas::gemv_n(1.0, &a, &x, 0.0, &mut dense_y);
        for (s, d) in sparse_y.iter().zip(&dense_y) {
            prop_assert!(close(*s, *d, 1e-12));
        }
    }

    /// CSC column dots match dense column dots.
    #[test]
    fn csc_col_dot_matches_dense(a in matrix(10)) {
        let csc = CsrMatrix::from_dense(&a, 0.0).to_csc();
        let x: Vec<f64> = (0..a.rows()).map(|i| 2.0 - i as f64 * 0.1).collect();
        for j in 0..a.cols() {
            let dense = blas::dot(a.col(j), &x);
            prop_assert!(close(csc.col_dot(j, &x), dense, 1e-12));
        }
    }

    /// Sparse assembly round trip, bitwise: triplets pushed in arbitrary
    /// (unsorted) order through COO → CSR → CSC all land on the same dense
    /// matrix bit-for-bit — including empty rows/columns — and SpMV /
    /// transposed SpMV agree with dense gemv. Duplicate coordinates go
    /// through `from_triplets`, which must merge them (and drop exact
    /// cancellations) before the formats compare.
    #[test]
    fn coo_csr_csc_roundtrip_bitwise(
        (m, n) in (1usize..12, 1usize..12),
        cells in proptest::collection::vec((0usize..144, -4.0f64..4.0), 0..40),
        dup in proptest::collection::vec((0usize..144, -4.0f64..4.0), 0..6),
    ) {
        // Unique-cell assembly via raw pushes, in generation order (almost
        // surely unsorted): the bitwise path.
        let mut seen = std::collections::HashSet::new();
        let mut coo = CooMatrix::<f64>::new(m, n);
        for &(cell, v) in &cells {
            let (i, j) = (cell % m, (cell / m) % n);
            if v != 0.0 && seen.insert((i, j)) {
                coo.push(i, j, v);
            }
        }
        let dense = coo.to_dense();
        let csr = coo.to_csr();
        let csc = csr.to_csc();
        prop_assert_eq!(csr.to_dense(), dense.clone());
        prop_assert_eq!(csc.to_dense(), dense.clone());
        prop_assert_eq!(csr.nnz(), coo.nnz());

        // SpMV / SpMVᵀ parity against dense gemv (tolerance: summation
        // order differs between the sparse and dense walks).
        let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.9).cos()).collect();
        let mut y_s = vec![0.0; m];
        csr.spmv(&x, &mut y_s);
        let mut y_d = vec![0.0; m];
        blas::gemv_n(1.0, &dense, &x, 0.0, &mut y_d);
        for (s, d) in y_s.iter().zip(&y_d) {
            prop_assert!(close(*s, *d, 1e-12));
        }
        let xt: Vec<f64> = (0..m).map(|i| 1.0 - i as f64 * 0.3).collect();
        let mut yt_s = vec![0.0; n];
        csr.spmv_t(&xt, &mut yt_s);
        let mut yt_d = vec![0.0; n];
        blas::gemv_t(1.0, &dense, &xt, 0.0, &mut yt_d);
        for (s, d) in yt_s.iter().zip(&yt_d) {
            prop_assert!(close(*s, *d, 1e-12));
        }

        // Duplicate coordinates through the merging constructor: the dense
        // images still agree across all three formats.
        let mut trips: Vec<(usize, usize, f64)> = cells
            .iter()
            .map(|&(cell, v)| (cell % m, (cell / m) % n, v))
            .collect();
        trips.extend(dup.iter().map(|&(cell, v)| (cell % m, (cell / m) % n, v)));
        let merged = CooMatrix::from_triplets(m, n, &trips);
        let merged_dense = merged.to_dense();
        prop_assert_eq!(merged.to_csr().to_dense(), merged_dense.clone());
        prop_assert_eq!(merged.to_csr().to_csc().to_dense(), merged_dense);
    }

    /// Device reductions agree with host folds for any length.
    #[test]
    fn device_reductions_match_host(data in proptest::collection::vec(-100.0f64..100.0, 1..3000)) {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let d = gpu.htod(&data);
        let sum = gblas::reduce(&gpu, d.view(), data.len(), gblas::ReduceOp::Sum).unwrap();
        let host_sum: f64 = data.iter().sum();
        prop_assert!(close(sum, host_sum, 1e-9));
        let (minv, mini) = gblas::argmin(&gpu, d.view(), data.len()).unwrap();
        let (hi, hv) = data
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
            .map(|(i, &v)| (i, v))
            .unwrap();
        prop_assert_eq!(minv, hv);
        prop_assert_eq!(mini as usize, hi);
    }
}
