//! Column-major dense matrices.
//!
//! Column-major is the deliberate choice of the paper's GPU implementation:
//! with one device thread per row, lane `i` of a warp reads `A[i + j·ld]`
//! and consecutive lanes touch consecutive addresses — fully coalesced. The
//! row-major mirror (`to_row_major`) exists solely for the coalescing
//! ablation (experiment F4).

use crate::scalar::Scalar;

/// Dense column-major matrix: element `(i, j)` lives at `data[i + j * rows]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, T::ONE);
        }
        m
    }

    /// Build from column-major storage.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "storage size mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// Build from a row-major iterator of rows (handy in tests).
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut m = DenseMatrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows]
    }

    /// Set element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows] = v;
    }

    /// Contiguous storage of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable storage of column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copy of row `i` (strided gather).
    pub fn row(&self, i: usize) -> Vec<T> {
        (0..self.cols).map(|j| self.get(i, j)).collect()
    }

    /// Full column-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable full column-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Row-major copy of the storage (for the uncoalesced-layout ablation).
    pub fn to_row_major(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.push(self.get(i, j));
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix<T> {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// New matrix keeping only the columns in `keep`, in order.
    pub fn select_cols(&self, keep: &[usize]) -> DenseMatrix<T> {
        let mut m = DenseMatrix::zeros(self.rows, keep.len());
        for (out_j, &j) in keep.iter().enumerate() {
            m.col_mut(out_j).copy_from_slice(self.col(j));
        }
        m
    }

    /// Maximum absolute element (∞-norm of the storage).
    pub fn max_abs(&self) -> T {
        self.data.iter().fold(T::ZERO, |acc, &x| acc.maxs(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        self.data.iter().fold(T::ZERO, |acc, &x| acc + x * x).sqrt()
    }

    /// Count of elements with `|x| > tol` (fill statistics for reports).
    pub fn nnz(&self, tol: T) -> usize {
        self.data.iter().filter(|&&x| x.abs() > tol).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_major_layout() {
        let m = DenseMatrix::from_rows(&[vec![1.0f64, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.col(1), &[2.0, 4.0]);
        assert_eq!(m.row(1), vec![3.0, 4.0]);
    }

    #[test]
    fn identity_and_transpose() {
        let i = DenseMatrix::<f32>::identity(3);
        assert_eq!(i.transpose(), i);
        let m = DenseMatrix::from_rows(&[vec![1.0f32, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
    }

    #[test]
    fn row_major_conversion_matches_rows() {
        let m = DenseMatrix::from_rows(&[vec![1.0f64, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.to_row_major(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn select_cols_reorders() {
        let m = DenseMatrix::from_rows(&[vec![1.0f64, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let s = m.select_cols(&[2, 0]);
        assert_eq!(s.col(0), &[3.0, 6.0]);
        assert_eq!(s.col(1), &[1.0, 4.0]);
    }

    #[test]
    fn norms_and_nnz() {
        let m = DenseMatrix::from_rows(&[vec![3.0f64, 0.0], vec![0.0, -4.0]]);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.nnz(1e-12), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = DenseMatrix::from_rows(&[vec![1.0f64], vec![1.0, 2.0]]);
    }
}
