//! The floating-point abstraction shared by every solver and BLAS routine.
//!
//! The paper ran in single precision (GT200 fp64 was 1/8 rate and CUBLAS
//! double support was new); the reproduction is generic so experiment T3 can
//! compare f32 against f64 on identical code paths.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use gpu_sim::Pod;

/// A real scalar usable on both the CPU and the simulated device.
pub trait Scalar:
    Pod
    + PartialOrd
    + Debug
    + Display
    + Default
    + Sum
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// True for `f64` (drives the simulated fp64 throughput penalty).
    const IS_F64: bool;

    /// Lossy conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Positive infinity.
    fn infinity() -> Self;
    /// Machine epsilon.
    fn epsilon() -> Self;
    /// True for finite values.
    fn is_finite(self) -> bool;
    /// Pointwise maximum (NaN-propagating like `f64::max` is not required;
    /// solver code never feeds NaN here).
    fn maxs(self, other: Self) -> Self;
    /// Pointwise minimum.
    fn mins(self, other: Self) -> Self;
    /// Fused or unfused `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const IS_F64: bool = false;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn infinity() -> Self {
        f32::INFINITY
    }
    #[inline]
    fn epsilon() -> Self {
        f32::EPSILON
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn maxs(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn mins(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // Plain multiply-add: GT200-era hardware MAD truncated intermediates,
        // so *not* using fused mul_add better matches the era and keeps CPU
        // and GPU paths bitwise identical.
        self * a + b
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const IS_F64: bool = true;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn infinity() -> Self {
        f64::INFINITY
    }
    #[inline]
    fn epsilon() -> Self {
        f64::EPSILON
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn maxs(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn mins(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert!(T::infinity() > T::from_f64(1e30));
        assert!(!T::infinity().is_finite());
        assert_eq!(T::from_f64(-3.0).abs().to_f64(), 3.0);
        assert_eq!(T::from_f64(9.0).sqrt().to_f64(), 3.0);
        assert_eq!(T::from_f64(2.0).maxs(T::from_f64(5.0)).to_f64(), 5.0);
        assert_eq!(T::from_f64(2.0).mins(T::from_f64(5.0)).to_f64(), 2.0);
        assert_eq!(
            T::from_f64(2.0).mul_add(T::from_f64(3.0), T::ONE).to_f64(),
            7.0
        );
    }

    // The IS_F64 checks assert on associated constants by design: they pin
    // the discriminant each Scalar impl advertises.
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn f32_impl() {
        roundtrip::<f32>();
        assert!(!f32::IS_F64);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn f64_impl() {
        roundtrip::<f64>();
        assert!(f64::IS_F64);
    }
}
