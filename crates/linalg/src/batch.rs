//! Structure-of-arrays storage for same-shape matrix families.
//!
//! The mega-batch backend runs one thread-block per LP over a family of
//! identically shaped problems. For that to coalesce, the batch index must
//! be the *innermost* stride: element `(i, j)` of family member `b` lives at
//! `data[(i + j*rows) * width + b]`, so the threads of a warp (consecutive
//! `b` for a fixed `(i, j)`) touch consecutive addresses. Pack/unpack
//! converters move bitwise-identical values between this layout and the
//! per-member [`DenseMatrix`] form; the batched kernels never reorder or
//! re-associate arithmetic, so a lane of the SoA block is the same matrix it
//! was before packing.

use crate::dense::DenseMatrix;
use crate::scalar::Scalar;

/// A same-shape family of dense column-major matrices stored batch-innermost.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseBatchLayout<T> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
    width: usize,
}

impl<T: Scalar> DenseBatchLayout<T> {
    /// Zero-initialized batch of `width` members, each `rows × cols`.
    pub fn zeros(rows: usize, cols: usize, width: usize) -> Self {
        DenseBatchLayout {
            data: vec![T::ZERO; rows * cols * width],
            rows,
            cols,
            width,
        }
    }

    /// Pack a family of same-shape matrices into SoA form. Panics when the
    /// family is empty or the shapes disagree — grouping happens before
    /// packing, so a mismatch here is a caller bug.
    pub fn pack(members: &[DenseMatrix<T>]) -> Self {
        assert!(!members.is_empty(), "cannot pack an empty family");
        let rows = members[0].rows();
        let cols = members[0].cols();
        let width = members.len();
        let mut batch = Self::zeros(rows, cols, width);
        for (b, m) in members.iter().enumerate() {
            assert_eq!(m.rows(), rows, "member {b} row count mismatch");
            assert_eq!(m.cols(), cols, "member {b} column count mismatch");
            for j in 0..cols {
                for (i, &v) in m.col(j).iter().enumerate() {
                    batch.set(b, i, j, v);
                }
            }
        }
        batch
    }

    /// Unpack lane `b` back into a standalone matrix (bitwise round trip).
    pub fn unpack(&self, b: usize) -> DenseMatrix<T> {
        assert!(b < self.width, "lane {b} out of range {}", self.width);
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            for i in 0..self.rows {
                m.set(i, j, self.get(b, i, j));
            }
        }
        m
    }

    /// Rows per member.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns per member.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Family width (number of members).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Flat SoA index of element `(i, j)` in lane `b`.
    #[inline]
    pub fn idx(&self, b: usize, i: usize, j: usize) -> usize {
        debug_assert!(b < self.width && i < self.rows && j < self.cols);
        (i + j * self.rows) * self.width + b
    }

    /// Element `(i, j)` of lane `b`.
    #[inline]
    pub fn get(&self, b: usize, i: usize, j: usize) -> T {
        self.data[self.idx(b, i, j)]
    }

    /// Store into element `(i, j)` of lane `b`.
    #[inline]
    pub fn set(&mut self, b: usize, i: usize, j: usize, v: T) {
        let k = self.idx(b, i, j);
        self.data[k] = v;
    }

    /// The flat SoA storage (upload source for device-resident batches).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

/// Pack a family of equal-length vectors batch-innermost: element `i` of
/// lane `b` lands at `i * width + b`.
pub fn pack_vectors<T: Scalar>(members: &[&[T]]) -> Vec<T> {
    assert!(!members.is_empty(), "cannot pack an empty family");
    let len = members[0].len();
    let width = members.len();
    let mut out = vec![T::ZERO; len * width];
    for (b, v) in members.iter().enumerate() {
        assert_eq!(v.len(), len, "member {b} length mismatch");
        for (i, &x) in v.iter().enumerate() {
            out[i * width + b] = x;
        }
    }
    out
}

/// Extract lane `b` from a batch-innermost vector family.
pub fn unpack_vector<T: Scalar>(data: &[T], width: usize, b: usize) -> Vec<T> {
    assert!(b < width, "lane {b} out of range {width}");
    assert_eq!(data.len() % width, 0, "SoA length not a multiple of width");
    data[b..].iter().step_by(width).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family(width: usize, rows: usize, cols: usize) -> Vec<DenseMatrix<f64>> {
        (0..width)
            .map(|b| {
                let mut m = DenseMatrix::zeros(rows, cols);
                for j in 0..cols {
                    for i in 0..rows {
                        m.set(i, j, (b * rows * cols + j * rows + i) as f64 + 0.25);
                    }
                }
                m
            })
            .collect()
    }

    #[test]
    fn pack_unpack_round_trips() {
        let mats = family(3, 4, 5);
        let batch = DenseBatchLayout::pack(&mats);
        assert_eq!((batch.rows(), batch.cols(), batch.width()), (4, 5, 3));
        for (b, m) in mats.iter().enumerate() {
            assert_eq!(&batch.unpack(b), m);
        }
    }

    #[test]
    fn batch_index_is_innermost() {
        let mats = family(4, 2, 2);
        let batch = DenseBatchLayout::pack(&mats);
        // Consecutive lanes of one element are adjacent in storage.
        let s = batch.as_slice();
        for b in 0..4 {
            assert_eq!(s[b], mats[b].get(0, 0));
        }
        assert_eq!(batch.idx(0, 1, 0), 4);
        assert_eq!(batch.idx(1, 0, 1), 2 * 2 * 4 / 2 + 1);
    }

    #[test]
    fn vector_helpers_round_trip() {
        let a = [1.0f64, 2.0, 3.0];
        let b = [4.0f64, 5.0, 6.0];
        let soa = pack_vectors(&[&a, &b]);
        assert_eq!(soa, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(unpack_vector(&soa, 2, 0), a);
        assert_eq!(unpack_vector(&soa, 2, 1), b);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn mismatched_shapes_panic() {
        let mats = vec![DenseMatrix::<f64>::zeros(2, 2), DenseMatrix::zeros(3, 2)];
        DenseBatchLayout::pack(&mats);
    }
}
