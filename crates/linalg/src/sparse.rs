//! Sparse matrix formats (COO, CSR, CSC) and SpMV.
//!
//! The 2009 paper works on dense matrices; sparse storage backs the
//! sparse-extension experiment (F5) — the question the follow-on literature
//! asked of it — plus the sparse instance generators in the `lp` crate.

use gpu_sim::{
    AccessPattern, DView, DViewMut, Gpu, Kernel, KernelCost, LaunchConfig, Launcher, ThreadCtx,
};

use crate::dense::DenseMatrix;
use crate::scalar::Scalar;

/// Coordinate-list sparse matrix; triplets sorted by (row, col).
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<T: Scalar> {
    rows: usize,
    cols: usize,
    /// Row indices of the nonzeros.
    pub row_idx: Vec<u32>,
    /// Column indices of the nonzeros.
    pub col_idx: Vec<u32>,
    /// Nonzero values.
    pub values: Vec<T>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Empty matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            row_idx: Vec::new(),
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from unsorted triplets; duplicates are summed. A duplicate
    /// group that sums to exactly zero is dropped entirely — keeping it
    /// would inflate `nnz()`/`density()` and feed a structural zero into
    /// every symbolic consumer (e.g. the LU symbolic phase). A *single*
    /// explicit zero triplet is kept: the caller wrote it on purpose.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, T)]) -> Self {
        let mut ts: Vec<(usize, usize, T)> = triplets.to_vec();
        ts.sort_by_key(|a| (a.0, a.1));
        let mut m = CooMatrix::new(rows, cols);
        let mut i = 0;
        while i < ts.len() {
            let (r, c, _) = ts[i];
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            let mut acc = T::ZERO;
            let mut j = i;
            while j < ts.len() && ts[j].0 == r && ts[j].1 == c {
                acc += ts[j].2;
                j += 1;
            }
            let cancelled = j - i > 1 && acc == T::ZERO;
            if !cancelled {
                m.row_idx.push(r as u32);
                m.col_idx.push(c as u32);
                m.values.push(acc);
            }
            i = j;
        }
        m
    }

    /// Append one nonzero; the caller must keep (row, col) order or call
    /// [`CooMatrix::from_triplets`] instead.
    pub fn push(&mut self, r: usize, c: usize, v: T) {
        assert!(
            r < self.rows && c < self.cols,
            "push ({r},{c}) out of bounds"
        );
        self.row_idx.push(r as u32);
        self.col_idx.push(c as u32);
        self.values.push(v);
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Nonzero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Convert to CSR. Triplets may be in any row order (e.g. assembled
    /// via [`CooMatrix::push`] column-by-column): the payload is permuted
    /// through the counting sort, not cloned positionally, so each value
    /// lands in the row `row_ptr` says it does. The sort is stable, so
    /// within a row the nonzeros keep their assembly order.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut row_ptr = vec![0u32; self.rows + 1];
        for &r in &self.row_idx {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = self.nnz();
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![T::ZERO; nnz];
        let mut cursor = row_ptr.clone();
        for k in 0..nnz {
            let r = self.row_idx[k] as usize;
            let dst = cursor[r] as usize;
            col_idx[dst] = self.col_idx[k];
            values[dst] = self.values[k];
            cursor[r] += 1;
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Dense copy (tests and small problems).
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for k in 0..self.nnz() {
            let (i, j) = (self.row_idx[k] as usize, self.col_idx[k] as usize);
            let v = d.get(i, j) + self.values[k];
            d.set(i, j, v);
        }
        d
    }
}

/// Compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T: Scalar> {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s nonzeros.
    pub row_ptr: Vec<u32>,
    /// Column index of each nonzero.
    pub col_idx: Vec<u32>,
    /// Nonzero values.
    pub values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Build from a dense matrix, dropping elements with `|x| <= tol`.
    pub fn from_dense(d: &DenseMatrix<T>, tol: T) -> Self {
        let mut coo = CooMatrix::new(d.rows(), d.cols());
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                let v = d.get(i, j);
                if v.abs() > tol {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Nonzero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill fraction.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// `y ← Ax` (serial CPU).
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(self.cols, x.len(), "spmv: x length mismatch");
        assert_eq!(self.rows, y.len(), "spmv: y length mismatch");
        for i in 0..self.rows {
            let mut acc = T::ZERO;
            for k in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                acc = self.values[k].mul_add(x[self.col_idx[k] as usize], acc);
            }
            y[i] = acc;
        }
    }

    /// `y ← Aᵀx` (serial CPU).
    pub fn spmv_t(&self, x: &[T], y: &mut [T]) {
        assert_eq!(self.rows, x.len(), "spmv_t: x length mismatch");
        assert_eq!(self.cols, y.len(), "spmv_t: y length mismatch");
        for v in y.iter_mut() {
            *v = T::ZERO;
        }
        for i in 0..self.rows {
            let xi = x[i];
            for k in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                let j = self.col_idx[k] as usize;
                y[j] = self.values[k].mul_add(xi, y[j]);
            }
        }
    }

    /// Extract column `j` as a dense vector (O(nnz); CSC is the right
    /// format when this is hot — see [`CscMatrix`]).
    pub fn col_dense(&self, j: usize) -> Vec<T> {
        assert!(j < self.cols);
        let mut out = vec![T::ZERO; self.rows];
        for i in 0..self.rows {
            for k in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                if self.col_idx[k] as usize == j {
                    out[i] = self.values[k];
                }
            }
        }
        out
    }

    /// Convert to CSC.
    pub fn to_csc(&self) -> CscMatrix<T> {
        let mut col_ptr = vec![0u32; self.cols + 1];
        for &c in &self.col_idx {
            col_ptr[c as usize + 1] += 1;
        }
        for j in 0..self.cols {
            col_ptr[j + 1] += col_ptr[j];
        }
        let nnz = self.nnz();
        let mut row_idx = vec![0u32; nnz];
        let mut values = vec![T::ZERO; nnz];
        let mut cursor = col_ptr.clone();
        for i in 0..self.rows {
            for k in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                let c = self.col_idx[k] as usize;
                let dst = cursor[c] as usize;
                row_idx[dst] = i as u32;
                values[dst] = self.values[k];
                cursor[c] += 1;
            }
        }
        CscMatrix {
            rows: self.rows,
            cols: self.cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Dense copy.
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                d.set(i, self.col_idx[k] as usize, self.values[k]);
            }
        }
        d
    }
}

/// Compressed sparse column matrix (fast column access for pricing).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T: Scalar> {
    rows: usize,
    cols: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes column `j`'s nonzeros.
    pub col_ptr: Vec<u32>,
    /// Row index of each nonzero.
    pub row_idx: Vec<u32>,
    /// Nonzero values.
    pub values: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Nonzero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Nonzeros of column `j` as `(row, value)` pairs.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let lo = self.col_ptr[j] as usize;
        let hi = self.col_ptr[j + 1] as usize;
        self.row_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&r, &v)| (r as usize, v))
    }

    /// Sparse dot of column `j` with a dense vector.
    pub fn col_dot(&self, j: usize, x: &[T]) -> T {
        let mut acc = T::ZERO;
        for (i, v) in self.col(j) {
            acc = v.mul_add(x[i], acc);
        }
        acc
    }

    /// `y ← Ax` (serial CPU, column-wise scatter).
    ///
    /// The zeroing pass is an unconditional overwrite, *before* any
    /// `x[j] == 0` skip: a NaN parked in `y` by a faulted kernel must be
    /// healed here (β = 0 semantics), while a NaN riding in through `x`
    /// fails the zero test and still propagates — poison in real inputs
    /// stays visible.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(self.cols, x.len(), "csc spmv: x length mismatch");
        assert_eq!(self.rows, y.len(), "csc spmv: y length mismatch");
        for v in y.iter_mut() {
            *v = T::ZERO;
        }
        for (j, &xj) in x.iter().enumerate() {
            if xj == T::ZERO {
                continue;
            }
            for (i, v) in self.col(j) {
                y[i] = v.mul_add(xj, y[i]);
            }
        }
    }

    /// `y ← Aᵀx` (serial CPU, per-column gather — overwrite semantics).
    pub fn spmv_t(&self, x: &[T], y: &mut [T]) {
        assert_eq!(self.rows, x.len(), "csc spmv_t: x length mismatch");
        assert_eq!(self.cols, y.len(), "csc spmv_t: y length mismatch");
        for (j, yj) in y.iter_mut().enumerate() {
            *yj = self.col_dot(j, x);
        }
    }

    /// Dense copy.
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            for (i, v) in self.col(j) {
                d.set(i, j, v);
            }
        }
        d
    }
}

// --------------------------------------------------------------------------
// Device SpMV (CSR scalar kernel, one thread per row — the 2009 baseline
// sparse kernel; column-index gathers are scattered by nature).
// --------------------------------------------------------------------------

/// A CSR matrix resident in simulated device memory.
pub struct DeviceCsr<T: Scalar> {
    row_ptr: gpu_sim::DeviceBuffer<u32>,
    col_idx: gpu_sim::DeviceBuffer<u32>,
    values: gpu_sim::DeviceBuffer<T>,
    rows: usize,
    cols: usize,
}

impl<T: Scalar> DeviceCsr<T> {
    /// Upload a host CSR matrix.
    pub fn upload(gpu: &Gpu, m: &CsrMatrix<T>) -> Self {
        DeviceCsr {
            row_ptr: gpu.htod(&m.row_ptr),
            col_idx: gpu.htod(&m.col_idx),
            values: gpu.htod(&m.values),
            rows: m.rows(),
            cols: m.cols(),
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Nonzero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y ← Ax` on the device.
    pub fn spmv(&self, gpu: &Gpu, x: DView<T>, y: DViewMut<T>) {
        self.spmv_on(&mut Launcher::Direct(gpu), x, y)
            .expect("device spmv faulted");
    }

    /// `y ← Ax` through a [`Launcher`], so the product can join a fused
    /// kernel chain (one launch overhead for the whole PDHG step).
    pub fn spmv_on(
        &self,
        l: &mut Launcher<'_, '_>,
        x: DView<T>,
        y: DViewMut<T>,
    ) -> Result<(), gpu_sim::DeviceError> {
        assert_eq!(self.cols, x.len(), "device spmv: x length mismatch");
        assert_eq!(self.rows, y.len(), "device spmv: y length mismatch");
        let kernel = SpmvCsrK {
            row_ptr: self.row_ptr.view(),
            col_idx: self.col_idx.view(),
            values: self.values.view(),
            x,
            y,
            rows: self.rows,
            nnz: self.nnz(),
        };
        l.try_launch(LaunchConfig::for_elems(self.rows, 128), &kernel)
    }
}

struct SpmvCsrK<T: Scalar> {
    row_ptr: DView<u32>,
    col_idx: DView<u32>,
    values: DView<T>,
    x: DView<T>,
    y: DViewMut<T>,
    rows: usize,
    nnz: usize,
}

impl<T: Scalar> Kernel for SpmvCsrK<T> {
    fn name(&self) -> &'static str {
        "spmv_csr"
    }
    fn run(&self, t: &ThreadCtx) {
        let i = t.global_id();
        if i >= self.rows {
            return;
        }
        let lo = self.row_ptr.get(i) as usize;
        let hi = self.row_ptr.get(i + 1) as usize;
        let vals = self.values.as_slice();
        let cols = self.col_idx.as_slice();
        let x = self.x.as_slice();
        let mut acc = T::ZERO;
        for k in lo..hi {
            acc = vals[k].mul_add(x[cols[k] as usize], acc);
        }
        self.y.set(i, acc);
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let rows = self.rows as u64;
        let nnz = self.nnz as u64;
        KernelCost::new()
            .flops_total(2 * nnz)
            .fp64(T::IS_F64)
            // Scalar CSR: each lane walks its own row — value/index reads
            // are effectively scattered across lanes; x gathers likewise.
            .read(AccessPattern::scattered::<T>(nnz))
            .read(AccessPattern::scattered::<u32>(nnz))
            .read(AccessPattern::scattered::<T>(nnz))
            .read(AccessPattern::coalesced::<u32>(2 * rows))
            .write(AccessPattern::coalesced::<T>(rows))
            // Ragged rows diverge within warps.
            .divergence(1.5)
            .active_threads(cfg, rows)
    }
}

// --------------------------------------------------------------------------
// Device CSC (one thread per column). `Aᵀx` over CSC is a pure per-column
// gather — deterministic with no atomics, which is exactly what the PDHG
// dual update `c − Aᵀy` needs every iteration.
// --------------------------------------------------------------------------

/// A CSC matrix resident in simulated device memory.
pub struct DeviceCsc<T: Scalar> {
    col_ptr: gpu_sim::DeviceBuffer<u32>,
    row_idx: gpu_sim::DeviceBuffer<u32>,
    values: gpu_sim::DeviceBuffer<T>,
    rows: usize,
    cols: usize,
}

impl<T: Scalar> DeviceCsc<T> {
    /// Upload a host CSC matrix.
    pub fn upload(gpu: &Gpu, m: &CscMatrix<T>) -> Self {
        DeviceCsc {
            col_ptr: gpu.htod(&m.col_ptr),
            row_idx: gpu.htod(&m.row_idx),
            values: gpu.htod(&m.values),
            rows: m.rows(),
            cols: m.cols(),
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Nonzero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y ← Aᵀx` on the device.
    pub fn spmv_t(&self, gpu: &Gpu, x: DView<T>, y: DViewMut<T>) {
        self.spmv_t_on(&mut Launcher::Direct(gpu), x, y)
            .expect("device spmv_t faulted");
    }

    /// `y ← Aᵀx` through a [`Launcher`] (fusable per-column gather).
    pub fn spmv_t_on(
        &self,
        l: &mut Launcher<'_, '_>,
        x: DView<T>,
        y: DViewMut<T>,
    ) -> Result<(), gpu_sim::DeviceError> {
        assert_eq!(self.rows, x.len(), "device spmv_t: x length mismatch");
        assert_eq!(self.cols, y.len(), "device spmv_t: y length mismatch");
        let kernel = SpmvCscTK {
            col_ptr: self.col_ptr.view(),
            row_idx: self.row_idx.view(),
            values: self.values.view(),
            x,
            y,
            cols: self.cols,
            nnz: self.nnz(),
        };
        l.try_launch(LaunchConfig::for_elems(self.cols, 128), &kernel)
    }
}

struct SpmvCscTK<T: Scalar> {
    col_ptr: DView<u32>,
    row_idx: DView<u32>,
    values: DView<T>,
    x: DView<T>,
    y: DViewMut<T>,
    cols: usize,
    nnz: usize,
}

impl<T: Scalar> Kernel for SpmvCscTK<T> {
    fn name(&self) -> &'static str {
        "spmv_t_csc"
    }
    fn run(&self, t: &ThreadCtx) {
        let j = t.global_id();
        if j >= self.cols {
            return;
        }
        let lo = self.col_ptr.get(j) as usize;
        let hi = self.col_ptr.get(j + 1) as usize;
        let vals = self.values.as_slice();
        let rows = self.row_idx.as_slice();
        let x = self.x.as_slice();
        let mut acc = T::ZERO;
        for k in lo..hi {
            acc = vals[k].mul_add(x[rows[k] as usize], acc);
        }
        // Unconditional overwrite: an empty column writes an exact zero, so
        // a NaN-poisoned y entry cannot survive the product (no `*= 0`).
        self.y.set(j, acc);
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let cols = self.cols as u64;
        let nnz = self.nnz as u64;
        KernelCost::new()
            .flops_total(2 * nnz)
            .fp64(T::IS_F64)
            // Mirror image of the scalar CSR kernel: per-lane column walks
            // scatter the value/index reads, and the x gathers follow the
            // row indices.
            .read(AccessPattern::scattered::<T>(nnz))
            .read(AccessPattern::scattered::<u32>(nnz))
            .read(AccessPattern::scattered::<T>(nnz))
            .read(AccessPattern::coalesced::<u32>(2 * cols))
            .write(AccessPattern::coalesced::<T>(cols))
            // Ragged columns diverge within warps.
            .divergence(1.5)
            .active_threads(cfg, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn example() -> CooMatrix<f64> {
        // [0 1 5]
        // [0 0 4]
        // [1 0 0]  — the thesis's running example, a fine tiny fixture.
        CooMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (0, 2, 5.0), (1, 2, 4.0), (2, 0, 1.0)])
    }

    #[test]
    fn coo_to_csr_layout() {
        let csr = example().to_csr();
        assert_eq!(csr.row_ptr, vec![0, 2, 3, 4]);
        assert_eq!(csr.col_idx, vec![1, 2, 2, 0]);
        assert_eq!(csr.values, vec![1.0, 5.0, 4.0, 1.0]);
        assert_eq!(csr.nnz(), 4);
        assert!((csr.density() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_are_summed() {
        let coo = CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0f32), (0, 0, 2.0), (1, 1, 3.0)]);
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.to_dense().get(0, 0), 3.0);
    }

    #[test]
    fn to_csr_permutes_unsorted_pushes() {
        // Assemble column-by-column, so row indices arrive out of order —
        // the regression for the unpermuted-clone bug: row_ptr was right
        // but col_idx/values stayed in push order, silently mis-assigning
        // values to rows.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(2, 0, 1.0f64);
        coo.push(0, 1, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(0, 2, 4.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row_ptr, vec![0, 2, 3, 4]);
        assert_eq!(csr.to_dense(), coo.to_dense());
        // Row-sorted with stable within-row order: exact layout.
        assert_eq!(csr.col_idx, vec![1, 2, 1, 0]);
        assert_eq!(csr.values, vec![2.0, 4.0, 3.0, 1.0]);
    }

    #[test]
    fn cancelled_duplicates_are_dropped() {
        // (0,0) sums to exactly zero across duplicates: it must not
        // survive as an explicit zero inflating nnz()/density().
        let coo = CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0f64), (1, 1, 3.0), (0, 0, -1.0)]);
        assert_eq!(coo.nnz(), 1);
        assert_eq!(coo.to_dense().get(1, 1), 3.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert!((csr.density() - 0.25).abs() < 1e-12);
        // A single explicit zero is intentional and kept.
        let z = CooMatrix::from_triplets(1, 1, &[(0, 0, 0.0f64)]);
        assert_eq!(z.nnz(), 1);
    }

    #[test]
    fn spmv_matches_dense() {
        let coo = example();
        let csr = coo.to_csr();
        let dense = coo.to_dense();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        csr.spmv(&x, &mut y);
        let mut expect = vec![0.0; 3];
        crate::blas::gemv_n(1.0, &dense, &x, 0.0, &mut expect);
        assert_eq!(y, expect);
    }

    #[test]
    fn spmv_t_matches_dense() {
        let csr = example().to_csr();
        let dense = example().to_dense();
        let x = vec![1.0, -2.0, 0.5];
        let mut y = vec![0.0; 3];
        csr.spmv_t(&x, &mut y);
        let mut expect = vec![0.0; 3];
        crate::blas::gemv_t(1.0, &dense, &x, 0.0, &mut expect);
        assert_eq!(y, expect);
    }

    #[test]
    fn csc_roundtrip_and_col_access() {
        let csr = example().to_csr();
        let csc = csr.to_csc();
        assert_eq!(csc.nnz(), csr.nnz());
        let col2: Vec<(usize, f64)> = csc.col(2).collect();
        assert_eq!(col2, vec![(0, 5.0), (1, 4.0)]);
        assert_eq!(csc.col_dot(2, &[1.0, 2.0, 3.0]), 13.0);
        assert_eq!(csr.col_dense(2), vec![5.0, 4.0, 0.0]);
    }

    #[test]
    fn from_dense_roundtrip() {
        let dense = example().to_dense();
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn csc_spmv_matches_csr() {
        let csr = example().to_csr();
        let csc = csr.to_csc();
        let x = vec![1.0, 2.0, 3.0];
        let mut y_csr = vec![0.0; 3];
        let mut y_csc = vec![0.0; 3];
        csr.spmv(&x, &mut y_csr);
        csc.spmv(&x, &mut y_csc);
        assert_eq!(y_csr, y_csc);
        let xt = vec![1.0, -2.0, 0.5];
        let mut t_csr = vec![0.0; 3];
        let mut t_csc = vec![0.0; 3];
        csr.spmv_t(&xt, &mut t_csr);
        csc.spmv_t(&xt, &mut t_csc);
        assert_eq!(t_csr, t_csc);
    }

    #[test]
    fn sparse_spmv_heals_poisoned_y() {
        // Overwrite semantics: whatever garbage is sitting in y — NaN from
        // a faulted kernel included — must be gone after the product. The
        // row/column with no nonzeros is the trap: a `y[i] *= 0` zeroing
        // pass (or one skipped on an x == 0 fast path) keeps the NaN alive.
        let csr = example().to_csr();
        let csc = csr.to_csc();
        let x = vec![0.0, 0.0, 0.0]; // exercises every x == 0 fast path
        let mut y = vec![f64::NAN, f64::NAN, f64::NAN];
        csr.spmv(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0]);
        let mut y = vec![f64::NAN, f64::NAN, f64::NAN];
        csc.spmv(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0]);
        let mut y = vec![f64::NAN, f64::NAN, f64::NAN];
        csr.spmv_t(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0]);
        let mut y = vec![f64::NAN, f64::NAN, f64::NAN];
        csc.spmv_t(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn sparse_spmv_keeps_x_poison_visible() {
        // The heal is only for the output operand: NaN in x is real data
        // corruption and must reach every row/column that touches it.
        let csr = example().to_csr();
        let csc = csr.to_csc();
        let x = vec![f64::NAN, 0.0, 0.0];
        let mut y = vec![0.0; 3];
        csc.spmv(&x, &mut y); // column 0 has a nonzero in row 2
        assert!(y[2].is_nan());
        let mut y = vec![0.0; 3];
        csr.spmv_t(&x, &mut y); // row 0 hits columns 1 and 2
        assert!(y[1].is_nan() && y[2].is_nan());
    }

    #[test]
    fn device_csc_spmv_t_matches_cpu_and_heals() {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let csr = example().to_csr();
        let csc = csr.to_csc();
        let d = DeviceCsc::upload(&gpu, &csc);
        let x = vec![1.0, -2.0, 0.5];
        let dx = gpu.htod(&x);
        // Pre-poison the device output: the gather must overwrite it.
        let mut dy = gpu.alloc(3, f64::NAN);
        d.spmv_t(&gpu, dx.view(), dy.view_mut());
        let mut expect = vec![0.0; 3];
        csc.spmv_t(&x, &mut expect);
        assert_eq!(gpu.dtoh(&dy), expect);
    }

    #[test]
    fn device_spmv_matches_cpu() {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let csr = example().to_csr();
        let d = DeviceCsr::upload(&gpu, &csr);
        let x = vec![1.0, 2.0, 3.0];
        let dx = gpu.htod(&x);
        let mut dy = gpu.alloc(3, 0.0f64);
        d.spmv(&gpu, dx.view(), dy.view_mut());
        let mut expect = vec![0.0; 3];
        csr.spmv(&x, &mut expect);
        assert_eq!(gpu.dtoh(&dy), expect);
        assert!(gpu.counters().kernels_launched == 1);
    }
}
