//! # linalg — the linear-algebra substrate of the gplex reproduction
//!
//! Two mirrored BLAS subsets over the same [`Scalar`] abstraction
//! (`f32`/`f64`):
//!
//! * [`blas`] — serial CPU routines (the role ATLAS played for the paper's
//!   baseline), plus Gauss–Jordan inversion for basis refactorization, with
//!   a calibrated [`cpu_model`] that converts operation counts into modeled
//!   single-core time;
//! * [`gpu`] — the same operations as [`gpu_sim`] kernels (the role CUBLAS
//!   played for the paper's GPU implementation), including coalesced and
//!   deliberately *uncoalesced* variants for the layout ablation, and
//!   multi-pass device reductions (sum, dot, argmin) in the style of 2009
//!   CUDA reduction code.
//!
//! [`sparse`] provides CSR/COO/CSC storage and SpMV for the sparse-extension
//! experiment.
//!
//! Everything here is deterministic: given the same inputs, CPU and GPU
//! paths produce bitwise-reproducible results (GPU reductions use a fixed
//! tree order, not atomics).

// Numeric-kernel idioms used throughout: `!(a < b)` keeps NaN on the
// "no improvement" side of pivot/ratio tests (rewriting to `a >= b` flips
// NaN behavior), and indexed loops mirror the BLAS reference formulation
// over multiple co-indexed buffers.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod blas;
pub mod cpu_model;
pub mod dense;
pub mod gpu;
pub mod lu;
pub mod scalar;
pub mod sparse;

pub use batch::DenseBatchLayout;
pub use cpu_model::CpuModel;
pub use dense::DenseMatrix;
pub use lu::{LuStats, SparseLu};
pub use scalar::Scalar;
pub use sparse::{CooMatrix, CscMatrix, CsrMatrix, DeviceCsc, DeviceCsr};
