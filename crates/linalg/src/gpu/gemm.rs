//! Tiled device GEMM — the classic 16×16 shared-memory-tile kernel, the
//! one CUBLAS shipped for GT200. Not on the simplex iteration path (the
//! revised method is deliberately GEMV-shaped) but completes the BLAS-3
//! surface and anchors the simulator's shared-memory cost accounting.

use gpu_sim::{AccessPattern, DeviceError, Gpu, Kernel, KernelCost, LaunchConfig, ThreadCtx};

use super::blas::poison_if_corrupted;
use super::mat::{DeviceMatrix, Layout};
use crate::scalar::Scalar;

/// Modeled tile edge (16×16 threads per block on GT200).
pub const GEMM_TILE: usize = 16;

/// `C ← αAB + βC` on the device (all matrices col-major).
///
/// Functional geometry: one host iteration per column of C with a tight
/// inner loop; modeled geometry: the tiled kernel — each thread block
/// computes a 16×16 tile of C, staging A- and B-tiles through shared
/// memory, so every element of A and B is read from global memory
/// `dim/16` times instead of `dim` times.
pub fn gemm<T: Scalar>(
    gpu: &Gpu,
    alpha: T,
    a: &DeviceMatrix<T>,
    b: &DeviceMatrix<T>,
    beta: T,
    c: &mut DeviceMatrix<T>,
) -> Result<(), DeviceError> {
    assert_eq!(a.cols(), b.rows(), "gemm: inner dimension mismatch");
    assert_eq!(a.rows(), c.rows(), "gemm: C row mismatch");
    assert_eq!(b.cols(), c.cols(), "gemm: C col mismatch");
    assert_eq!(
        a.layout(),
        Layout::ColMajor,
        "device gemm is col-major only"
    );
    assert_eq!(
        b.layout(),
        Layout::ColMajor,
        "device gemm is col-major only"
    );
    assert_eq!(
        c.layout(),
        Layout::ColMajor,
        "device gemm is col-major only"
    );
    let kernel = GemmTiledK {
        alpha,
        a: a.view(),
        b: b.view(),
        beta,
        c: c.view_mut(),
        m: a.rows(),
        k: a.cols(),
        n: b.cols(),
    };
    gpu.try_launch(LaunchConfig::for_elems(b.cols(), 128), &kernel)?;
    poison_if_corrupted(gpu, &c.view_mut());
    Ok(())
}

struct GemmTiledK<T: Scalar> {
    alpha: T,
    a: gpu_sim::DView<T>,
    b: gpu_sim::DView<T>,
    beta: T,
    c: gpu_sim::DViewMut<T>,
    m: usize,
    k: usize,
    n: usize,
}

impl<T: Scalar> Kernel for GemmTiledK<T> {
    fn name(&self) -> &'static str {
        "gemm_tiled"
    }
    fn run(&self, t: &ThreadCtx) {
        // Functional: column j of C in one sweep (jki order, contiguous).
        let j = t.global_id();
        if j >= self.n {
            return;
        }
        let (m, k) = (self.m, self.k);
        let a = self.a.as_slice();
        let b = self.b.as_slice();
        let c = self.c.as_mut_slice();
        let cj = &mut c[j * m..(j + 1) * m];
        for v in cj.iter_mut() {
            *v *= self.beta;
        }
        for l in 0..k {
            let s = self.alpha * b[l + j * k];
            if s == T::ZERO {
                continue;
            }
            let al = &a[l * m..(l + 1) * m];
            for (cv, &av) in cj.iter_mut().zip(al) {
                *cv = s.mul_add(av, *cv);
            }
        }
    }
    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let (m, k, n) = (self.m as u64, self.k as u64, self.n as u64);
        let tile = GEMM_TILE as u64;
        // Tiled kernel: each of the (m/16)·(n/16) blocks walks k/16 tile
        // pairs; global reads of A and B are 1/16th of the naive m·k·n.
        let tiles_k = k.div_ceil(tile);
        let a_reads = m.div_ceil(tile) * tile * n.div_ceil(tile) * tile * tiles_k; // = m·n·k/16 (padded)
        let b_reads = a_reads;
        // Shared-memory traffic: every fma reads one A and one B operand
        // from the tile staging buffers.
        let fmas = m * n * k;
        KernelCost::new()
            .flops_total(2 * fmas + 2 * m * n)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(a_reads / tile))
            .read(AccessPattern::coalesced::<T>(b_reads / tile))
            .read(AccessPattern::coalesced::<T>(m * n))
            .write(AccessPattern::coalesced::<T>(m * n))
            .smem(2 * fmas)
            .active_threads_raw(m * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas;
    use crate::dense::DenseMatrix;
    use gpu_sim::DeviceSpec;

    fn filled(r: usize, c: usize, salt: usize) -> DenseMatrix<f64> {
        let mut m = DenseMatrix::zeros(r, c);
        for j in 0..c {
            for i in 0..r {
                m.set(i, j, ((i * 7 + j * 13 + salt) % 11) as f64 - 5.0);
            }
        }
        m
    }

    #[test]
    fn device_gemm_matches_cpu_gemm() {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let (m, k, n) = (17, 23, 9); // deliberately non-tile-aligned
        let ah = filled(m, k, 1);
        let bh = filled(k, n, 2);
        let ch = filled(m, n, 3);
        let mut expect = ch.clone();
        blas::gemm(1.5, &ah, &bh, -0.5, &mut expect);

        let da = DeviceMatrix::upload(&gpu, &ah, Layout::ColMajor).unwrap();
        let db = DeviceMatrix::upload(&gpu, &bh, Layout::ColMajor).unwrap();
        let mut dc = DeviceMatrix::upload(&gpu, &ch, Layout::ColMajor).unwrap();
        gemm(&gpu, 1.5, &da, &db, -0.5, &mut dc).unwrap();
        let got = dc.download(&gpu).unwrap();
        for j in 0..n {
            for i in 0..m {
                assert!(
                    (got.get(i, j) - expect.get(i, j)).abs() < 1e-10,
                    "({i},{j}): {} vs {}",
                    got.get(i, j),
                    expect.get(i, j)
                );
            }
        }
    }

    #[test]
    fn tiling_makes_gemm_compute_bound_not_bandwidth_bound() {
        // At 512³ the tiled kernel's global traffic is m·n·k/16 · 2 · 4 B ≈
        // 67 MB while the flops are 268 M — the roofline must tip to compute
        // (or smem), not global bandwidth.
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let s = 256;
        let h = DenseMatrix::<f64>::zeros(s, s);
        let da = DeviceMatrix::upload(&gpu, &h, Layout::ColMajor).unwrap();
        let db = DeviceMatrix::upload(&gpu, &h, Layout::ColMajor).unwrap();
        let mut dc = DeviceMatrix::upload(&gpu, &h, Layout::ColMajor).unwrap();
        gpu.reset_counters();
        gemm(&gpu, 1.0, &da, &db, 0.0, &mut dc).unwrap();
        let c = gpu.counters();
        let bytes_naive = 2u64 * (s as u64).pow(3) * 8;
        assert!(
            c.mem_bytes < bytes_naive / 4,
            "tiling should cut global traffic: {} vs naive {}",
            c.mem_bytes,
            bytes_naive
        );
        assert_eq!(c.flops, 2 * (s as u64).pow(3) + 2 * (s as u64).pow(2));
    }

    #[test]
    fn gemm_identity_roundtrip() {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let a = filled(12, 12, 4);
        let da = DeviceMatrix::upload(&gpu, &a, Layout::ColMajor).unwrap();
        let di = DeviceMatrix::<f64>::identity(&gpu, 12, Layout::ColMajor).unwrap();
        let mut dc = DeviceMatrix::<f64>::zeros(&gpu, 12, 12, Layout::ColMajor).unwrap();
        gemm(&gpu, 1.0, &da, &di, 0.0, &mut dc).unwrap();
        assert_eq!(dc.download(&gpu).unwrap(), a);
    }
}
