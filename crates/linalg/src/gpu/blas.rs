//! Host-callable wrappers around the simublas kernels — the CUBLAS-shaped
//! API surface the solver backends program against.
//!
//! Every wrapper is fallible: a device with an armed
//! [`gpu_sim::FaultPlan`] can reject any launch or transfer with a
//! [`DeviceError`], and injected *silent corruption* is realized here — a
//! corrupted launch completes, then the wrapper poisons its output with
//! NaN (see [`poison_if_corrupted`]), exactly the failure only numerical
//! detection upstream can catch. On a fault-free device the `Result` is
//! always `Ok`, so infallible callers simply `expect`.

use gpu_sim::{DView, DViewMut, DeviceError, Gpu, LaunchConfig, Launcher};

use super::algo::{reduce, ReduceOp};
use super::kernels::{
    AxpyK, CopyK, EtaK, FillK, GemvNK, GemvTNaiveK, GemvTPass1K, GemvTPass2K, GerK, MulEwK,
    PivotUpdateK, RowExtractK, ScalK, GEMV_T_STRIPS,
};
use super::mat::{DeviceMatrix, Layout};
use crate::scalar::Scalar;

/// Default block size for elementwise launches.
const BLOCK: u32 = 128;

/// If the device flagged an injected corruption, overwrite `out` with NaN.
///
/// Host-side poke through the view, charging nothing: this *models* the
/// kernel having written garbage, it is not extra work the device did.
pub(crate) fn poison_if_corrupted<T: Scalar>(gpu: &Gpu, out: &DViewMut<T>) {
    if gpu.take_corruption() {
        let nan = T::from_f64(f64::NAN);
        for i in 0..out.len() {
            out.set(i, nan);
        }
    }
}

/// `x[i] = val` for all `i`.
pub fn fill<T: Scalar>(gpu: &Gpu, x: DViewMut<T>, val: T) -> Result<(), DeviceError> {
    let n = x.len();
    gpu.try_launch(LaunchConfig::for_elems(n, BLOCK), &FillK { out: x, val, n })?;
    Ok(())
}

/// `x ← αx`.
pub fn scal<T: Scalar>(gpu: &Gpu, alpha: T, x: DViewMut<T>) -> Result<(), DeviceError> {
    let n = x.len();
    gpu.try_launch(LaunchConfig::for_elems(n, BLOCK), &ScalK { x, alpha, n })?;
    Ok(())
}

/// `y ← αx + y`.
pub fn axpy<T: Scalar>(
    gpu: &Gpu,
    alpha: T,
    x: DView<T>,
    y: DViewMut<T>,
) -> Result<(), DeviceError> {
    let n = x.len();
    assert_eq!(n, y.len(), "axpy: length mismatch");
    gpu.try_launch(LaunchConfig::for_elems(n, BLOCK), &AxpyK { alpha, x, y, n })?;
    Ok(())
}

/// `dst ← src`.
pub fn copy<T: Scalar>(gpu: &Gpu, src: DView<T>, dst: DViewMut<T>) -> Result<(), DeviceError> {
    copy_on(&mut Launcher::Direct(gpu), src, dst)
}

/// [`copy`] through an arbitrary [`Launcher`] (direct or fused).
pub fn copy_on<T: Scalar>(
    l: &mut Launcher<'_, '_>,
    src: DView<T>,
    dst: DViewMut<T>,
) -> Result<(), DeviceError> {
    let n = src.len();
    assert_eq!(n, dst.len(), "copy: length mismatch");
    l.try_launch(LaunchConfig::for_elems(n, BLOCK), &CopyK { src, dst, n })?;
    Ok(())
}

/// Device dot product `xᵀy` (elementwise multiply + tree reduction; the
/// result crosses PCIe, as a 2009 `cublasSdot` result did).
pub fn dot<T: Scalar>(gpu: &Gpu, x: DView<T>, y: DView<T>) -> Result<T, DeviceError> {
    let n = x.len();
    assert_eq!(n, y.len(), "dot: length mismatch");
    if n == 0 {
        return Ok(T::ZERO);
    }
    let mut prod = gpu.try_alloc(n, T::ZERO)?;
    gpu.try_launch(
        LaunchConfig::for_elems(n, BLOCK),
        &MulEwK {
            x,
            y,
            out: prod.view_mut(),
            n,
        },
    )?;
    poison_if_corrupted(gpu, &prod.view_mut());
    reduce(gpu, prod.view(), n, ReduceOp::Sum)
}

/// `y ← αAx + βy`.
pub fn gemv_n<T: Scalar>(
    gpu: &Gpu,
    alpha: T,
    a: &DeviceMatrix<T>,
    x: DView<T>,
    beta: T,
    y: DViewMut<T>,
) -> Result<(), DeviceError> {
    gemv_n_on(&mut Launcher::Direct(gpu), alpha, a, x, beta, y)
}

/// [`gemv_n`] through an arbitrary [`Launcher`] (direct or fused).
pub fn gemv_n_on<T: Scalar>(
    l: &mut Launcher<'_, '_>,
    alpha: T,
    a: &DeviceMatrix<T>,
    x: DView<T>,
    beta: T,
    y: DViewMut<T>,
) -> Result<(), DeviceError> {
    assert_eq!(a.cols(), x.len(), "gemv_n: x length mismatch");
    assert_eq!(a.rows(), y.len(), "gemv_n: y length mismatch");
    let out = y;
    let kernel = GemvNK {
        a: a.view(),
        layout: a.layout(),
        m: a.rows(),
        n: a.cols(),
        alpha,
        x,
        beta,
        y,
    };
    // Functional geometry: single sweep (see module docs); modeled geometry
    // (one thread per row) is declared in the kernel's cost descriptor.
    l.try_launch(LaunchConfig::for_elems(a.rows(), BLOCK), &kernel)?;
    poison_if_corrupted(l.gpu(), &out);
    Ok(())
}

/// Strategy for the transposed matrix-vector product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemvTStrategy {
    /// One thread per column (uncoalesced on col-major storage).
    Naive,
    /// Two passes with 32 cooperating threads per column (coalesced);
    /// col-major only.
    TwoPass,
}

/// `y ← αAᵀx + βy`.
pub fn gemv_t<T: Scalar>(
    gpu: &Gpu,
    alpha: T,
    a: &DeviceMatrix<T>,
    x: DView<T>,
    beta: T,
    y: DViewMut<T>,
    strategy: GemvTStrategy,
) -> Result<(), DeviceError> {
    gemv_t_on(&mut Launcher::Direct(gpu), alpha, a, x, beta, y, strategy)
}

/// [`gemv_t`] through an arbitrary [`Launcher`] (direct or fused).
pub fn gemv_t_on<T: Scalar>(
    l: &mut Launcher<'_, '_>,
    alpha: T,
    a: &DeviceMatrix<T>,
    x: DView<T>,
    beta: T,
    y: DViewMut<T>,
    strategy: GemvTStrategy,
) -> Result<(), DeviceError> {
    assert_eq!(a.rows(), x.len(), "gemv_t: x length mismatch");
    assert_eq!(a.cols(), y.len(), "gemv_t: y length mismatch");
    let out = y;
    match strategy {
        GemvTStrategy::Naive => {
            let kernel = GemvTNaiveK {
                a: a.view(),
                layout: a.layout(),
                m: a.rows(),
                n: a.cols(),
                alpha,
                x,
                beta,
                y,
            };
            l.try_launch(LaunchConfig::for_elems(a.cols(), BLOCK), &kernel)?;
        }
        GemvTStrategy::TwoPass => {
            assert_eq!(
                a.layout(),
                Layout::ColMajor,
                "two-pass gemv_t requires col-major storage"
            );
            let strips = GEMV_T_STRIPS;
            let mut partials = l.gpu().try_alloc(a.cols() * strips, T::ZERO)?;
            l.try_launch(
                LaunchConfig::for_elems(a.cols() * strips, BLOCK),
                &GemvTPass1K {
                    a: a.view(),
                    m: a.rows(),
                    n: a.cols(),
                    x,
                    partials: partials.view_mut(),
                },
            )?;
            poison_if_corrupted(l.gpu(), &partials.view_mut());
            l.try_launch(
                LaunchConfig::for_elems(a.cols(), BLOCK),
                &GemvTPass2K {
                    partials: partials.view(),
                    n: a.cols(),
                    alpha,
                    beta,
                    y,
                },
            )?;
        }
    }
    poison_if_corrupted(l.gpu(), &out);
    Ok(())
}

/// `y ← αA[:, start..start+len]ᵀ x + βy` — transposed gemv over a
/// contiguous column block (col-major only, where a column block is a
/// contiguous sub-buffer). The workhorse of partial pricing: the solver
/// prices `len` columns per iteration instead of all of them.
// BLAS-style signature: the argument list mirrors the gemv calling
// convention plus the column-block window.
#[allow(clippy::too_many_arguments)]
pub fn gemv_t_cols<T: Scalar>(
    gpu: &Gpu,
    alpha: T,
    a: &DeviceMatrix<T>,
    start: usize,
    len: usize,
    x: DView<T>,
    beta: T,
    y: DViewMut<T>,
    strategy: GemvTStrategy,
) -> Result<(), DeviceError> {
    gemv_t_cols_on(
        &mut Launcher::Direct(gpu),
        alpha,
        a,
        start,
        len,
        x,
        beta,
        y,
        strategy,
    )
}

/// [`gemv_t_cols`] through an arbitrary [`Launcher`] (direct or fused).
#[allow(clippy::too_many_arguments)]
pub fn gemv_t_cols_on<T: Scalar>(
    l: &mut Launcher<'_, '_>,
    alpha: T,
    a: &DeviceMatrix<T>,
    start: usize,
    len: usize,
    x: DView<T>,
    beta: T,
    y: DViewMut<T>,
    strategy: GemvTStrategy,
) -> Result<(), DeviceError> {
    assert_eq!(
        a.layout(),
        Layout::ColMajor,
        "gemv_t_cols requires col-major storage"
    );
    assert!(start + len <= a.cols(), "column window out of range");
    assert_eq!(a.rows(), x.len(), "gemv_t_cols: x length mismatch");
    assert_eq!(len, y.len(), "gemv_t_cols: y length mismatch");
    let m = a.rows();
    let block = a.view().subview(start * m, len * m);
    let out = y;
    match strategy {
        GemvTStrategy::Naive => {
            l.try_launch(
                LaunchConfig::for_elems(len, BLOCK),
                &GemvTNaiveK {
                    a: block,
                    layout: Layout::ColMajor,
                    m,
                    n: len,
                    alpha,
                    x,
                    beta,
                    y,
                },
            )?;
        }
        GemvTStrategy::TwoPass => {
            let strips = GEMV_T_STRIPS;
            let mut partials = l.gpu().try_alloc(len * strips, T::ZERO)?;
            l.try_launch(
                LaunchConfig::for_elems(len * strips, BLOCK),
                &GemvTPass1K {
                    a: block,
                    m,
                    n: len,
                    x,
                    partials: partials.view_mut(),
                },
            )?;
            poison_if_corrupted(l.gpu(), &partials.view_mut());
            l.try_launch(
                LaunchConfig::for_elems(len, BLOCK),
                &GemvTPass2K {
                    partials: partials.view(),
                    n: len,
                    alpha,
                    beta,
                    y,
                },
            )?;
        }
    }
    poison_if_corrupted(l.gpu(), &out);
    Ok(())
}

/// Rank-1 update `A ← A + αxyᵀ`.
pub fn ger<T: Scalar>(
    gpu: &Gpu,
    alpha: T,
    x: DView<T>,
    y: DView<T>,
    a: &mut DeviceMatrix<T>,
) -> Result<(), DeviceError> {
    assert_eq!(a.rows(), x.len(), "ger: x length mismatch");
    assert_eq!(a.cols(), y.len(), "ger: y length mismatch");
    let (m, n, layout) = (a.rows(), a.cols(), a.layout());
    let functional_iters = match layout {
        Layout::ColMajor => n,
        Layout::RowMajor => m,
    };
    let kernel = GerK {
        alpha,
        x,
        y,
        a: a.view_mut(),
        m,
        n,
        layout,
    };
    gpu.try_launch(LaunchConfig::for_elems(functional_iters, BLOCK), &kernel)?;
    poison_if_corrupted(gpu, &a.view_mut());
    Ok(())
}

/// Gauss–Jordan column elimination on a device matrix: given the pivot
/// column values `alpha` (length `rows`) and pivot row `p`, apply
/// `M ← E·M` where `E` is the eta matrix that maps `alpha` to `e_p`.
///
/// Three launches: eta column, pivot-row extraction, O(rows·cols) update.
pub fn eliminate<T: Scalar>(
    gpu: &Gpu,
    mat: &mut DeviceMatrix<T>,
    alpha: DView<T>,
    p: usize,
) -> Result<(), DeviceError> {
    eliminate_on(&mut Launcher::Direct(gpu), mat, alpha, p)
}

/// [`eliminate`] through an arbitrary [`Launcher`] (direct or fused).
pub fn eliminate_on<T: Scalar>(
    l: &mut Launcher<'_, '_>,
    mat: &mut DeviceMatrix<T>,
    alpha: DView<T>,
    p: usize,
) -> Result<(), DeviceError> {
    let (rows, cols, layout) = (mat.rows(), mat.cols(), mat.layout());
    assert_eq!(rows, alpha.len(), "eliminate: alpha length mismatch");
    assert!(p < rows, "eliminate: pivot row out of range");

    let mut eta = l.gpu().try_alloc(rows, T::ZERO)?;
    l.try_launch(
        LaunchConfig::for_elems(rows, BLOCK),
        &EtaK {
            alpha,
            p,
            eta: eta.view_mut(),
            m: rows,
        },
    )?;
    poison_if_corrupted(l.gpu(), &eta.view_mut());

    let mut rowp = l.gpu().try_alloc(cols, T::ZERO)?;
    l.try_launch(
        LaunchConfig::for_elems(cols, BLOCK),
        &RowExtractK {
            mat: mat.view(),
            rows,
            cols,
            layout,
            p,
            out: rowp.view_mut(),
        },
    )?;
    poison_if_corrupted(l.gpu(), &rowp.view_mut());

    let functional_iters = match layout {
        Layout::ColMajor => cols,
        Layout::RowMajor => rows,
    };
    l.try_launch(
        LaunchConfig::for_elems(functional_iters, BLOCK),
        &PivotUpdateK {
            mat: mat.view_mut(),
            eta: eta.view(),
            rowp: rowp.view(),
            p,
            rows,
            cols,
            layout,
        },
    )?;
    poison_if_corrupted(l.gpu(), &mat.view_mut());
    Ok(())
}

/// The revised simplex basis-inverse update (the paper's per-iteration core):
/// replace `B⁻¹ ← E·B⁻¹` where `E` is the eta matrix built from the entering
/// column `α_q = B⁻¹ a_q` and leaving row `p`.
pub fn pivot_update<T: Scalar>(
    gpu: &Gpu,
    binv: &mut DeviceMatrix<T>,
    alpha_q: DView<T>,
    p: usize,
) -> Result<(), DeviceError> {
    pivot_update_on(&mut Launcher::Direct(gpu), binv, alpha_q, p)
}

/// [`pivot_update`] through an arbitrary [`Launcher`] (direct or fused).
pub fn pivot_update_on<T: Scalar>(
    l: &mut Launcher<'_, '_>,
    binv: &mut DeviceMatrix<T>,
    alpha_q: DView<T>,
    p: usize,
) -> Result<(), DeviceError> {
    assert_eq!(binv.rows(), binv.cols(), "pivot_update: B⁻¹ must be square");
    eliminate_on(l, binv, alpha_q, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas;
    use crate::dense::DenseMatrix;
    use gpu_sim::DeviceSpec;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::gtx280())
    }

    fn approx(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn vector_ops_match_cpu() {
        let g = gpu();
        let xh = vec![1.0f64, -2.0, 3.0, 0.5];
        let yh = vec![4.0, 5.0, -6.0, 2.0];
        let x = g.htod(&xh);
        let mut y = g.htod(&yh);
        axpy(&g, 2.0, x.view(), y.view_mut()).unwrap();
        let mut expect = yh.clone();
        blas::axpy(2.0, &xh, &mut expect);
        assert_eq!(g.dtoh(&y), expect);

        scal(&g, 0.5, y.view_mut()).unwrap();
        blas::scal(0.5, &mut expect);
        assert_eq!(g.dtoh(&y), expect);

        assert_eq!(dot(&g, x.view(), x.view()).unwrap(), blas::dot(&xh, &xh));

        let mut z = g.alloc(4, 0.0f64);
        copy(&g, x.view(), z.view_mut()).unwrap();
        assert_eq!(g.dtoh(&z), xh);
        fill(&g, z.view_mut(), 7.0).unwrap();
        assert_eq!(g.dtoh(&z), vec![7.0; 4]);
    }

    #[test]
    fn gemv_n_matches_cpu_both_layouts() {
        let g = gpu();
        let a = DenseMatrix::from_rows(&[
            vec![1.0f64, 2.0, -1.0],
            vec![0.5, -3.0, 2.0],
            vec![4.0, 0.0, 1.0],
            vec![-1.0, 1.0, 1.0],
        ]);
        let xh = vec![2.0, -1.0, 3.0];
        let yh = vec![1.0, 1.0, 1.0, 1.0];
        let mut expect = yh.clone();
        blas::gemv_n(2.0, &a, &xh, 0.5, &mut expect);
        for layout in [Layout::ColMajor, Layout::RowMajor] {
            let da = DeviceMatrix::upload(&g, &a, layout).unwrap();
            let dx = g.htod(&xh);
            let mut dy = g.htod(&yh);
            gemv_n(&g, 2.0, &da, dx.view(), 0.5, dy.view_mut()).unwrap();
            approx(&g.dtoh(&dy), &expect, 1e-12);
        }
    }

    #[test]
    fn gemv_t_all_strategies_match_cpu() {
        let g = gpu();
        let a = DenseMatrix::from_rows(&[
            vec![1.0f64, 2.0, -1.0, 0.0],
            vec![0.5, -3.0, 2.0, 1.0],
            vec![4.0, 0.0, 1.0, -2.0],
        ]);
        let xh = vec![1.0, -2.0, 0.5];
        let yh = vec![0.1, 0.2, 0.3, 0.4];
        let mut expect = yh.clone();
        blas::gemv_t(1.5, &a, &xh, -1.0, &mut expect);

        for (layout, strat) in [
            (Layout::ColMajor, GemvTStrategy::Naive),
            (Layout::RowMajor, GemvTStrategy::Naive),
            (Layout::ColMajor, GemvTStrategy::TwoPass),
        ] {
            let da = DeviceMatrix::upload(&g, &a, layout).unwrap();
            let dx = g.htod(&xh);
            let mut dy = g.htod(&yh);
            gemv_t(&g, 1.5, &da, dx.view(), -1.0, dy.view_mut(), strat).unwrap();
            approx(g.dtoh(&dy).as_slice(), &expect, 1e-12);
        }
    }

    #[test]
    fn gemv_t_two_pass_covers_ragged_rows() {
        // m not a multiple of the strip count exercises the tail loop.
        let g = gpu();
        let m = 37;
        let n = 5;
        let mut a = DenseMatrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                a.set(i, j, ((i * 3 + j * 7) % 11) as f64 - 5.0);
            }
        }
        let xh: Vec<f64> = (0..m).map(|i| (i as f64).sin()).collect();
        let mut expect = vec![0.0; n];
        blas::gemv_t(1.0, &a, &xh, 0.0, &mut expect);
        let da = DeviceMatrix::upload(&g, &a, Layout::ColMajor).unwrap();
        let dx = g.htod(&xh);
        let mut dy = g.alloc(n, 0.0f64);
        gemv_t(
            &g,
            1.0,
            &da,
            dx.view(),
            0.0,
            dy.view_mut(),
            GemvTStrategy::TwoPass,
        )
        .unwrap();
        approx(&g.dtoh(&dy), &expect, 1e-10);
    }

    #[test]
    fn ger_matches_cpu_both_layouts() {
        let g = gpu();
        let base = DenseMatrix::from_rows(&[vec![1.0f64, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let xh = vec![1.0, -1.0, 2.0];
        let yh = vec![0.5, 2.0];
        let mut expect = base.clone();
        blas::ger(2.0, &xh, &yh, &mut expect);
        for layout in [Layout::ColMajor, Layout::RowMajor] {
            let mut da = DeviceMatrix::upload(&g, &base, layout).unwrap();
            let dx = g.htod(&xh);
            let dy = g.htod(&yh);
            ger(&g, 2.0, dx.view(), dy.view(), &mut da).unwrap();
            assert_eq!(da.download(&g).unwrap(), expect);
        }
    }

    #[test]
    fn pivot_update_matches_explicit_eta_product() {
        // Apply the update to B⁻¹ and check against E·B⁻¹ computed densely.
        let g = gpu();
        let m = 6;
        let p = 2;
        let mut binv_h = DenseMatrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                binv_h.set(
                    i,
                    j,
                    ((i * 5 + j * 3) % 7) as f64 + if i == j { 2.0 } else { 0.0 },
                );
            }
        }
        let alpha_h: Vec<f64> = (0..m).map(|i| 0.5 + i as f64).collect();

        // Dense oracle: E = I with column p replaced by eta.
        let mut e = DenseMatrix::<f64>::identity(m);
        for i in 0..m {
            let v = if i == p {
                1.0 / alpha_h[p]
            } else {
                -alpha_h[i] / alpha_h[p]
            };
            e.set(i, p, v);
        }
        let mut expect = DenseMatrix::zeros(m, m);
        blas::gemm(1.0, &e, &binv_h, 0.0, &mut expect);

        for layout in [Layout::ColMajor, Layout::RowMajor] {
            let mut db = DeviceMatrix::upload(&g, &binv_h, layout).unwrap();
            let da = g.htod(&alpha_h);
            pivot_update(&g, &mut db, da.view(), p).unwrap();
            let got = db.download(&g).unwrap();
            for i in 0..m {
                for j in 0..m {
                    assert!(
                        (got.get(i, j) - expect.get(i, j)).abs() < 1e-10,
                        "layout {layout:?} ({i},{j}): {} vs {}",
                        got.get(i, j),
                        expect.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn coalesced_gemv_t_is_faster_than_naive_on_col_major() {
        // The F4 ablation in miniature: same math, different simulated time.
        let g1 = gpu();
        let g2 = gpu();
        let n = 512;
        let a = DenseMatrix::<f32>::zeros(n, n);
        let x = vec![1.0f32; n];

        let da1 = DeviceMatrix::upload(&g1, &a, Layout::ColMajor).unwrap();
        let dx1 = g1.htod(&x);
        let mut dy1 = g1.alloc(n, 0.0f32);
        g1.reset_counters();
        gemv_t(
            &g1,
            1.0,
            &da1,
            dx1.view(),
            0.0,
            dy1.view_mut(),
            GemvTStrategy::TwoPass,
        )
        .unwrap();
        let t_coalesced = g1.elapsed();

        let da2 = DeviceMatrix::upload(&g2, &a, Layout::ColMajor).unwrap();
        let dx2 = g2.htod(&x);
        let mut dy2 = g2.alloc(n, 0.0f32);
        g2.reset_counters();
        gemv_t(
            &g2,
            1.0,
            &da2,
            dx2.view(),
            0.0,
            dy2.view_mut(),
            GemvTStrategy::Naive,
        )
        .unwrap();
        let t_naive = g2.elapsed();

        assert!(
            t_naive.as_nanos() > 2.0 * t_coalesced.as_nanos(),
            "naive {t_naive} should be much slower than two-pass {t_coalesced}"
        );
    }

    #[test]
    fn corrupted_gemv_poisons_output_with_nan() {
        use gpu_sim::{FaultConfig, FaultPlan};
        let g = gpu();
        let a = DenseMatrix::from_rows(&[vec![1.0f64, 2.0], vec![3.0, 4.0]]);
        let da = DeviceMatrix::upload(&g, &a, Layout::ColMajor).unwrap();
        let dx = g.htod(&[1.0f64, 1.0]);
        let mut dy = g.alloc(2, 0.0f64);
        let mut cfg = FaultConfig::off(17);
        cfg.kernel_corrupt = 1.0;
        g.set_fault_plan(FaultPlan::new(cfg));
        gemv_n(&g, 1.0, &da, dx.view(), 0.0, dy.view_mut()).unwrap();
        g.clear_fault_plan();
        assert!(
            g.dtoh(&dy).iter().all(|v| v.is_nan()),
            "corrupted output must be NaN"
        );
    }

    #[test]
    fn faulted_launch_surfaces_device_error() {
        use gpu_sim::{FaultConfig, FaultPlan};
        let g = gpu();
        let mut dy = g.alloc(8, 0.0f64);
        let mut cfg = FaultConfig::off(23);
        cfg.kernel_fault = 1.0;
        g.set_fault_plan(FaultPlan::new(cfg));
        let err = fill(&g, dy.view_mut(), 1.0).unwrap_err();
        assert!(matches!(err, DeviceError::KernelFault { .. }));
    }
}
