//! Device reduction algorithms, 2009 CUDA style: log-depth passes of
//! block-tree kernels, each pass a separate launch (kernel launches were the
//! era's only global barrier), finishing with a small device→host transfer.
//!
//! Those per-reduction launches and the final tiny PCIe read are charged in
//! full — they are a real part of why small LPs run faster on the CPU
//! (experiment F3).

use gpu_sim::{
    AccessPattern, DView, DViewMut, DeviceBuffer, DeviceError, Gpu, Kernel, KernelCost,
    LaunchConfig, Launcher, ThreadCtx,
};

use super::blas::poison_if_corrupted;
use super::kernels::CopyK;
use crate::scalar::Scalar;

/// Elements reduced per modeled thread block (256 threads × 2 loads).
pub const REDUCE_CHUNK: usize = 512;

/// Reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of elements.
    Sum,
    /// Minimum element.
    Min,
    /// Maximum element.
    Max,
}

impl ReduceOp {
    fn identity<T: Scalar>(&self) -> T {
        match self {
            ReduceOp::Sum => T::ZERO,
            ReduceOp::Min => T::infinity(),
            ReduceOp::Max => -T::infinity(),
        }
    }

    fn combine<T: Scalar>(&self, a: T, b: T) -> T {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.mins(b),
            ReduceOp::Max => a.maxs(b),
        }
    }
}

/// One tree pass: thread `c` reduces `input[c·CHUNK .. (c+1)·CHUNK]`.
struct ReducePassK<T: Scalar> {
    input: DView<T>,
    n: usize,
    out: DViewMut<T>,
    op: ReduceOp,
}

impl<T: Scalar> Kernel for ReducePassK<T> {
    fn name(&self) -> &'static str {
        "reduce_pass"
    }
    fn run(&self, t: &ThreadCtx) {
        let c = t.global_id();
        let start = c * REDUCE_CHUNK;
        if start >= self.n {
            return;
        }
        let end = (start + REDUCE_CHUNK).min(self.n);
        let data = self.input.as_slice();
        let mut acc = self.op.identity::<T>();
        for &v in &data[start..end] {
            acc = self.op.combine(acc, v);
        }
        self.out.set(c, acc);
    }
    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let n = self.n as u64;
        let out_len = (self.n).div_ceil(REDUCE_CHUNK) as u64;
        KernelCost::new()
            .flops_total(n)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(n))
            .write(AccessPattern::coalesced::<T>(out_len))
            .smem(2 * n)
            .active_threads_raw(n.div_ceil(2))
    }
}

/// Tree-reduce a device vector; deterministic combine order.
pub fn reduce<T: Scalar>(
    gpu: &Gpu,
    input: DView<T>,
    n: usize,
    op: ReduceOp,
) -> Result<T, DeviceError> {
    if n == 0 {
        return Ok(op.identity());
    }
    // First pass reads the caller's view; subsequent passes ping-pong
    // between scratch buffers we keep alive in `stages`.
    let mut stages: Vec<DeviceBuffer<T>> = Vec::new();
    let mut cur_len = n;
    let mut cur_view = input;
    while cur_len > 1 {
        let out_len = cur_len.div_ceil(REDUCE_CHUNK);
        let mut out = gpu.try_alloc(out_len, op.identity::<T>())?;
        gpu.try_launch(
            LaunchConfig::for_elems(out_len, 128),
            &ReducePassK {
                input: cur_view,
                n: cur_len,
                out: out.view_mut(),
                op,
            },
        )?;
        poison_if_corrupted(gpu, &out.view_mut());
        stages.push(out);
        cur_len = out_len;
        cur_view = stages.last().expect("stage just pushed").view();
    }
    match stages.last() {
        Some(buf) => Ok(gpu.try_dtoh_range(buf, 0, 1)?[0]),
        // n == 1: read the single element straight from the caller's view.
        None => {
            // Charge the same tiny transfer a real implementation would pay.
            let host = cur_view.as_slice()[0];
            gpu.charge(
                gpu_sim::TimeCategory::TransferD2H,
                gpu_sim::timing::transfer_time(gpu.spec(), T::BYTES),
            );
            Ok(host)
        }
    }
}

/// `out[i] = (vals[i] == target) ? i : u32::MAX` — stage two of argmin.
struct MapEqIdxK<T: Scalar> {
    vals: DView<T>,
    target: T,
    out: DViewMut<u32>,
    n: usize,
}

impl<T: Scalar> Kernel for MapEqIdxK<T> {
    fn name(&self) -> &'static str {
        "map_eq_idx"
    }
    fn run(&self, t: &ThreadCtx) {
        let i = t.global_id();
        if i < self.n {
            let v = if self.vals.get(i) == self.target {
                i as u32
            } else {
                u32::MAX
            };
            self.out.set(i, v);
        }
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let n = self.n as u64;
        KernelCost::new()
            .int_ops_total(n)
            .read(AccessPattern::coalesced::<T>(n))
            .write(AccessPattern::coalesced::<u32>(n))
            .active_threads(cfg, n)
    }
}

/// One tree pass of a u32 minimum reduction.
struct ReduceU32MinPassK {
    input: DView<u32>,
    n: usize,
    out: DViewMut<u32>,
}

impl Kernel for ReduceU32MinPassK {
    fn name(&self) -> &'static str {
        "reduce_u32_min"
    }
    fn run(&self, t: &ThreadCtx) {
        let c = t.global_id();
        let start = c * REDUCE_CHUNK;
        if start >= self.n {
            return;
        }
        let end = (start + REDUCE_CHUNK).min(self.n);
        let data = self.input.as_slice();
        let mut acc = u32::MAX;
        for &v in &data[start..end] {
            acc = acc.min(v);
        }
        self.out.set(c, acc);
    }
    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let n = self.n as u64;
        let out_len = self.n.div_ceil(REDUCE_CHUNK) as u64;
        KernelCost::new()
            .int_ops_total(n)
            .read(AccessPattern::coalesced::<u32>(n))
            .write(AccessPattern::coalesced::<u32>(out_len))
            .smem(2 * n)
            .active_threads_raw(n.div_ceil(2))
    }
}

/// Overwrite a u32 buffer with `u32::MAX` if the device flagged an injected
/// corruption — the integer analogue of the NaN poison (an all-MAX index
/// vector means "nothing found", which upstream code treats as suspect).
fn poison_u32_if_corrupted(gpu: &Gpu, out: &DViewMut<u32>) {
    if gpu.take_corruption() {
        for i in 0..out.len() {
            out.set(i, u32::MAX);
        }
    }
}

/// Tree-reduce a device u32 vector to its minimum.
pub fn reduce_u32_min(gpu: &Gpu, input: DView<u32>, n: usize) -> Result<u32, DeviceError> {
    if n == 0 {
        return Ok(u32::MAX);
    }
    let mut stages: Vec<DeviceBuffer<u32>> = Vec::new();
    let mut cur_len = n;
    let mut cur_view = input;
    while cur_len > 1 {
        let out_len = cur_len.div_ceil(REDUCE_CHUNK);
        let mut out = gpu.try_alloc(out_len, u32::MAX)?;
        gpu.try_launch(
            LaunchConfig::for_elems(out_len, 128),
            &ReduceU32MinPassK {
                input: cur_view,
                n: cur_len,
                out: out.view_mut(),
            },
        )?;
        poison_u32_if_corrupted(gpu, &out.view_mut());
        stages.push(out);
        cur_len = out_len;
        cur_view = stages.last().expect("stage just pushed").view();
    }
    match stages.last() {
        Some(buf) => Ok(gpu.try_dtoh_range(buf, 0, 1)?[0]),
        None => {
            let host = cur_view.as_slice()[0];
            gpu.charge(
                gpu_sim::TimeCategory::TransferD2H,
                gpu_sim::timing::transfer_time(gpu.spec(), 4),
            );
            Ok(host)
        }
    }
}

/// Index and value of the minimum element; ties resolved to the smallest
/// index (Bland-compatible determinism). Three stages, as 2009 code did it:
/// value min-reduce, equality map, index min-reduce.
pub fn argmin<T: Scalar>(gpu: &Gpu, vals: DView<T>, n: usize) -> Result<(T, u32), DeviceError> {
    assert!(n > 0, "argmin of an empty vector");
    let minv = reduce(gpu, vals, n, ReduceOp::Min)?;
    let mut idx = gpu.try_alloc(n, u32::MAX)?;
    gpu.try_launch(
        LaunchConfig::for_elems(n, 128),
        &MapEqIdxK {
            vals,
            target: minv,
            out: idx.view_mut(),
            n,
        },
    )?;
    poison_u32_if_corrupted(gpu, &idx.view_mut());
    let i = reduce_u32_min(gpu, idx.view(), n)?;
    Ok((minv, i))
}

// --------------------------------------------------------------------------
// Staged variants: the reduction result stays *on device*, written into a
// caller-provided slot of a scalar-staging buffer. The per-iteration pivot
// probes can then come back in one batched PCIe transfer instead of one
// tiny dtoh per reduction — the fused-launch path's transfer half.
// --------------------------------------------------------------------------

/// `dst[i] = (T) src[i]` — stage a u32 reduction result into a scalar slot
/// of the (floating-point) staging buffer. Exact for indices below 2²⁴ even
/// in f32, far above any problem dimension here.
struct CastU32K<T: Scalar> {
    src: DView<u32>,
    dst: DViewMut<T>,
    n: usize,
}

impl<T: Scalar> Kernel for CastU32K<T> {
    fn name(&self) -> &'static str {
        "cast_u32"
    }
    fn run(&self, t: &ThreadCtx) {
        let i = t.global_id();
        if i < self.n {
            self.dst.set(i, T::from_f64(self.src.get(i) as f64));
        }
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let n = self.n as u64;
        KernelCost::new()
            .int_ops_total(n)
            .read(AccessPattern::coalesced::<u32>(n))
            .write(AccessPattern::coalesced::<T>(n))
            .active_threads(cfg, n)
    }
}

/// [`MapEqIdxK`] with the comparison target read from a 1-element device
/// buffer instead of a host scalar — lets the argmin chain run without the
/// intermediate device→host round-trip for the minimum value.
struct MapEqIdxDevK<T: Scalar> {
    vals: DView<T>,
    target: DView<T>,
    out: DViewMut<u32>,
    n: usize,
}

impl<T: Scalar> Kernel for MapEqIdxDevK<T> {
    fn name(&self) -> &'static str {
        "map_eq_idx_dev"
    }
    fn run(&self, t: &ThreadCtx) {
        let i = t.global_id();
        if i < self.n {
            let v = if self.vals.get(i) == self.target.get(0) {
                i as u32
            } else {
                u32::MAX
            };
            self.out.set(i, v);
        }
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let n = self.n as u64;
        KernelCost::new()
            .int_ops_total(n)
            .read(AccessPattern::coalesced::<T>(n))
            .read(AccessPattern::broadcast::<T>(n))
            .write(AccessPattern::coalesced::<u32>(n))
            .active_threads(cfg, n)
    }
}

/// [`reduce`] with the scalar result written into `out[0]` (a staging-buffer
/// slot) instead of crossing PCIe. Same tree passes, same combine order —
/// the staged value is bit-identical to what [`reduce`] downloads; the final
/// 1-element copy is one more kernel folded into the caller's launcher.
pub fn reduce_into<T: Scalar>(
    l: &mut Launcher<'_, '_>,
    input: DView<T>,
    n: usize,
    op: ReduceOp,
    out: DViewMut<T>,
) -> Result<(), DeviceError> {
    assert!(n > 0, "reduce_into of an empty vector");
    assert_eq!(out.len(), 1, "reduce_into writes exactly one slot");
    let mut stages: Vec<DeviceBuffer<T>> = Vec::new();
    let mut cur_len = n;
    let mut cur_view = input;
    while cur_len > 1 {
        let out_len = cur_len.div_ceil(REDUCE_CHUNK);
        let mut stage = l.gpu().try_alloc(out_len, op.identity::<T>())?;
        l.try_launch(
            LaunchConfig::for_elems(out_len, 128),
            &ReducePassK {
                input: cur_view,
                n: cur_len,
                out: stage.view_mut(),
                op,
            },
        )?;
        poison_if_corrupted(l.gpu(), &stage.view_mut());
        stages.push(stage);
        cur_len = out_len;
        cur_view = stages.last().expect("stage just pushed").view();
    }
    l.try_launch(
        LaunchConfig::for_elems(1, 1),
        &CopyK {
            src: cur_view.subview(0, 1),
            dst: out,
            n: 1,
        },
    )?;
    Ok(())
}

/// [`reduce_u32_min`] with the result cast into `out[0]` of the (scalar)
/// staging buffer instead of crossing PCIe.
pub fn reduce_u32_min_into<T: Scalar>(
    l: &mut Launcher<'_, '_>,
    input: DView<u32>,
    n: usize,
    out: DViewMut<T>,
) -> Result<(), DeviceError> {
    assert!(n > 0, "reduce_u32_min_into of an empty vector");
    assert_eq!(out.len(), 1, "reduce_u32_min_into writes exactly one slot");
    let mut stages: Vec<DeviceBuffer<u32>> = Vec::new();
    let mut cur_len = n;
    let mut cur_view = input;
    while cur_len > 1 {
        let out_len = cur_len.div_ceil(REDUCE_CHUNK);
        let mut stage = l.gpu().try_alloc(out_len, u32::MAX)?;
        l.try_launch(
            LaunchConfig::for_elems(out_len, 128),
            &ReduceU32MinPassK {
                input: cur_view,
                n: cur_len,
                out: stage.view_mut(),
            },
        )?;
        poison_u32_if_corrupted(l.gpu(), &stage.view_mut());
        stages.push(stage);
        cur_len = out_len;
        cur_view = stages.last().expect("stage just pushed").view();
    }
    l.try_launch(
        LaunchConfig::for_elems(1, 1),
        &CastU32K {
            src: cur_view.subview(0, 1),
            dst: out,
            n: 1,
        },
    )?;
    Ok(())
}

/// [`argmin`] with both results staged on device: the minimum value is
/// written to `stage[val_at]` and the (tie-broken smallest) index, cast to
/// `T`, to `stage[idx_at]`. The whole chain — value min-reduce, equality
/// map against the *staged* minimum, index min-reduce, cast — issues no
/// device→host transfer; the caller downloads the staging buffer once.
pub fn argmin_into<T: Scalar>(
    l: &mut Launcher<'_, '_>,
    vals: DView<T>,
    n: usize,
    stage: &mut DeviceBuffer<T>,
    val_at: usize,
    idx_at: usize,
) -> Result<(), DeviceError> {
    assert!(n > 0, "argmin of an empty vector");
    assert_ne!(val_at, idx_at, "argmin_into slots must be distinct");
    reduce_into(
        l,
        vals,
        n,
        ReduceOp::Min,
        stage.view_mut().subview_mut(val_at, 1),
    )?;
    let mut idx = l.gpu().try_alloc(n, u32::MAX)?;
    l.try_launch(
        LaunchConfig::for_elems(n, 128),
        &MapEqIdxDevK {
            vals,
            target: stage.view().subview(val_at, 1),
            out: idx.view_mut(),
            n,
        },
    )?;
    poison_u32_if_corrupted(l.gpu(), &idx.view_mut());
    reduce_u32_min_into(l, idx.view(), n, stage.view_mut().subview_mut(idx_at, 1))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::gtx280())
    }

    #[test]
    fn reduce_sum_matches_host() {
        let g = gpu();
        let host: Vec<f64> = (1..=2000).map(|i| i as f64).collect();
        let d = g.htod(&host);
        let s = reduce(&g, d.view(), host.len(), ReduceOp::Sum).unwrap();
        assert_eq!(s, 2000.0 * 2001.0 / 2.0);
    }

    #[test]
    fn reduce_min_max() {
        let g = gpu();
        let host = vec![3.0f32, -7.5, 2.0, 9.0, -1.0];
        let d = g.htod(&host);
        assert_eq!(reduce(&g, d.view(), 5, ReduceOp::Min).unwrap(), -7.5);
        assert_eq!(reduce(&g, d.view(), 5, ReduceOp::Max).unwrap(), 9.0);
    }

    #[test]
    fn reduce_handles_multi_pass_sizes() {
        // > CHUNK² elements forces three passes.
        let g = gpu();
        let n = REDUCE_CHUNK * REDUCE_CHUNK + 17;
        let host = vec![1.0f32; n];
        let d = g.htod(&host);
        let s = reduce(&g, d.view(), n, ReduceOp::Sum).unwrap();
        assert_eq!(s, n as f32);
    }

    #[test]
    fn reduce_singleton_and_empty() {
        let g = gpu();
        let d = g.htod(&[42.0f64]);
        assert_eq!(reduce(&g, d.view(), 1, ReduceOp::Sum).unwrap(), 42.0);
        assert_eq!(
            reduce::<f64>(&g, d.view(), 0, ReduceOp::Min).unwrap(),
            f64::INFINITY
        );
    }

    #[test]
    fn argmin_returns_first_of_ties() {
        let g = gpu();
        let host = vec![5.0f32, -2.0, 7.0, -2.0, 1.0];
        let d = g.htod(&host);
        let (v, i) = argmin(&g, d.view(), 5).unwrap();
        assert_eq!(v, -2.0);
        assert_eq!(i, 1);
    }

    #[test]
    fn argmin_large_deterministic() {
        let g = gpu();
        let n = 10_000;
        let host: Vec<f64> = (0..n).map(|i| ((i * 7919) % 1000) as f64).collect();
        let d = g.htod(&host);
        let (v, i) = argmin(&g, d.view(), n).unwrap();
        let (hi, hv) = host
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
            .map(|(i, &v)| (i, v))
            .unwrap();
        assert_eq!(v, hv);
        assert_eq!(i as usize, hi);
    }

    #[test]
    fn reductions_charge_launches_and_transfer() {
        let g = gpu();
        let host = vec![1.0f32; 4096];
        let d = g.htod(&host);
        g.reset_counters();
        let _ = reduce(&g, d.view(), 4096, ReduceOp::Sum).unwrap();
        let c = g.counters();
        assert_eq!(c.kernels_launched, 2); // 4096 → 8 → 1
        assert_eq!(c.d2h_count, 1);
        assert!(c.elapsed.as_micros() > 2.0 * 7.0);
    }

    #[test]
    fn reduce_into_matches_reduce_bitwise() {
        let g = gpu();
        let host: Vec<f32> = (0..3000).map(|i| ((i * 31) % 97) as f32 * 0.37).collect();
        let d = g.htod(&host);
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            let direct = reduce(&g, d.view(), host.len(), op).unwrap();
            let mut stage = g.try_alloc(1usize, 0.0f32).unwrap();
            let mut l = Launcher::Direct(&g);
            reduce_into(&mut l, d.view(), host.len(), op, stage.view_mut()).unwrap();
            let staged = g.try_dtoh_range(&stage, 0, 1).unwrap()[0];
            assert_eq!(staged.to_bits(), direct.to_bits());
        }
    }

    #[test]
    fn argmin_into_matches_argmin_and_skips_transfers() {
        let g = gpu();
        let n = 10_000;
        let host: Vec<f64> = (0..n).map(|i| ((i * 7919) % 1000) as f64).collect();
        let d = g.htod(&host);
        let (v, i) = argmin(&g, d.view(), n).unwrap();

        let mut stage = g.try_alloc(2usize, 0.0f64).unwrap();
        g.reset_counters();
        let mut l = Launcher::Direct(&g);
        argmin_into(&mut l, d.view(), n, &mut stage, 0, 1).unwrap();
        assert_eq!(
            g.counters().d2h_count,
            0,
            "staged argmin must not cross PCIe"
        );
        let out = g.try_dtoh_range(&stage, 0, 2).unwrap();
        assert_eq!(out[0].to_bits(), v.to_bits());
        assert_eq!(out[1], i as f64);
    }

    #[test]
    fn argmin_into_stages_inside_a_fused_group() {
        let g = gpu();
        let host = vec![5.0f32, 2.0, 8.0, 2.0, 9.0, 7.0, 3.0, 4.0];
        let d = g.htod(&host);
        let mut stage = g.try_alloc(2usize, 0.0f32).unwrap();
        g.reset_counters();
        let mut fused = g.try_begin_fused("argmin_fused").unwrap();
        {
            let mut l = Launcher::Fused(&mut fused);
            argmin_into(&mut l, d.view(), host.len(), &mut stage, 0, 1).unwrap();
        }
        fused.finish();
        let c = g.counters();
        assert_eq!(c.kernels_launched, 1, "whole chain is one fused group");
        assert!(c.fused_kernels_folded >= 3);
        let out = g.try_dtoh_range(&stage, 0, 2).unwrap();
        assert_eq!(out[0], 2.0);
        assert_eq!(out[1], 1.0); // first of the tied minima
    }
}
