//! Kernel definitions for the simublas routines.
//!
//! Every kernel pairs a functional body with a cost descriptor that models
//! the corresponding 2009-style CUDA kernel. Where the two use different
//! geometries (see module docs in [`super`]), the comment on `cost` states
//! the modeled geometry explicitly; the traffic numbers in each descriptor
//! are validated against hand counts in this file's tests and in
//! `tests/cost_validation.rs` at the crate root.

use gpu_sim::{AccessPattern, DView, DViewMut, Kernel, KernelCost, LaunchConfig, ThreadCtx};

use super::mat::Layout;
use crate::scalar::Scalar;

// --------------------------------------------------------------------------
// Elementwise vector kernels (functional geometry == modeled geometry).
// --------------------------------------------------------------------------

/// `out[i] = val`.
pub struct FillK<T: Scalar> {
    pub out: DViewMut<T>,
    pub val: T,
    pub n: usize,
}

impl<T: Scalar> Kernel for FillK<T> {
    fn name(&self) -> &'static str {
        "fill"
    }
    fn run(&self, t: &ThreadCtx) {
        let i = t.global_id();
        if i < self.n {
            self.out.set(i, self.val);
        }
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        KernelCost::new()
            .write(AccessPattern::coalesced::<T>(self.n as u64))
            .active_threads(cfg, self.n as u64)
    }
}

/// `x[i] *= alpha`.
pub struct ScalK<T: Scalar> {
    pub x: DViewMut<T>,
    pub alpha: T,
    pub n: usize,
}

impl<T: Scalar> Kernel for ScalK<T> {
    fn name(&self) -> &'static str {
        "scal"
    }
    fn run(&self, t: &ThreadCtx) {
        let i = t.global_id();
        if i < self.n {
            self.x.set(i, self.x.get(i) * self.alpha);
        }
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let n = self.n as u64;
        KernelCost::new()
            .flops_total(n)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(n))
            .write(AccessPattern::coalesced::<T>(n))
            .active_threads(cfg, n)
    }
}

/// `y[i] += alpha * x[i]`.
pub struct AxpyK<T: Scalar> {
    pub alpha: T,
    pub x: DView<T>,
    pub y: DViewMut<T>,
    pub n: usize,
}

impl<T: Scalar> Kernel for AxpyK<T> {
    fn name(&self) -> &'static str {
        "axpy"
    }
    fn run(&self, t: &ThreadCtx) {
        let i = t.global_id();
        if i < self.n {
            self.y
                .set(i, self.alpha.mul_add(self.x.get(i), self.y.get(i)));
        }
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let n = self.n as u64;
        KernelCost::new()
            .flops_total(2 * n)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(n))
            .read(AccessPattern::coalesced::<T>(n))
            .write(AccessPattern::coalesced::<T>(n))
            .active_threads(cfg, n)
    }
}

/// `dst[i] = src[i]`.
pub struct CopyK<T: Scalar> {
    pub src: DView<T>,
    pub dst: DViewMut<T>,
    pub n: usize,
}

impl<T: Scalar> Kernel for CopyK<T> {
    fn name(&self) -> &'static str {
        "copy"
    }
    fn run(&self, t: &ThreadCtx) {
        let i = t.global_id();
        if i < self.n {
            self.dst.set(i, self.src.get(i));
        }
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let n = self.n as u64;
        KernelCost::new()
            .read(AccessPattern::coalesced::<T>(n))
            .write(AccessPattern::coalesced::<T>(n))
            .active_threads(cfg, n)
    }
}

/// `out[i] = x[i] * y[i]` (first stage of a device dot product).
pub struct MulEwK<T: Scalar> {
    pub x: DView<T>,
    pub y: DView<T>,
    pub out: DViewMut<T>,
    pub n: usize,
}

impl<T: Scalar> Kernel for MulEwK<T> {
    fn name(&self) -> &'static str {
        "mul_ew"
    }
    fn run(&self, t: &ThreadCtx) {
        let i = t.global_id();
        if i < self.n {
            self.out.set(i, self.x.get(i) * self.y.get(i));
        }
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let n = self.n as u64;
        KernelCost::new()
            .flops_total(n)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(n))
            .read(AccessPattern::coalesced::<T>(n))
            .write(AccessPattern::coalesced::<T>(n))
            .active_threads(cfg, n)
    }
}

// --------------------------------------------------------------------------
// Matrix-vector kernels.
// --------------------------------------------------------------------------

/// `y ← αAx + βy`.
///
/// Modeled geometry: one device thread per row (m threads), each looping over
/// the n columns — the standard 2009 `sgemv` kernel. With col-major storage
/// lane i reads `A[i + j·ld]`: consecutive lanes, consecutive addresses —
/// coalesced. Row-major storage makes the same kernel stride by `n` elements
/// between lanes — the F4 ablation case.
///
/// Functional geometry: a single host iteration performing the whole product
/// in cache-friendly order (results are identical; see module docs).
pub struct GemvNK<T: Scalar> {
    pub a: DView<T>,
    pub layout: Layout,
    pub m: usize,
    pub n: usize,
    pub alpha: T,
    pub x: DView<T>,
    pub beta: T,
    pub y: DViewMut<T>,
}

impl<T: Scalar> Kernel for GemvNK<T> {
    fn name(&self) -> &'static str {
        "gemv_n"
    }
    fn run(&self, t: &ThreadCtx) {
        if t.global_id() != 0 {
            return;
        }
        let a = self.a.as_slice();
        let x = self.x.as_slice();
        let y = self.y.as_mut_slice();
        // NaN-aware β-scale: with β = 0 the output is overwritten, so a
        // poisoned previous y must be healed, not kept alive as 0 · NaN.
        for yi in y.iter_mut() {
            *yi = crate::blas::beta_scale(*yi, self.beta);
        }
        match self.layout {
            Layout::ColMajor => {
                for j in 0..self.n {
                    let s = self.alpha * x[j];
                    if s == T::ZERO {
                        continue;
                    }
                    let col = &a[j * self.m..(j + 1) * self.m];
                    for (yi, &aij) in y.iter_mut().zip(col) {
                        *yi = s.mul_add(aij, *yi);
                    }
                }
            }
            Layout::RowMajor => {
                for (i, yi) in y.iter_mut().enumerate() {
                    let row = &a[i * self.n..(i + 1) * self.n];
                    let mut acc = T::ZERO;
                    for (&aij, &xj) in row.iter().zip(x) {
                        acc = aij.mul_add(xj, acc);
                    }
                    *yi = self.alpha.mul_add(acc, *yi);
                }
            }
        }
    }
    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let m = self.m as u64;
        let n = self.n as u64;
        let a_pattern = match self.layout {
            Layout::ColMajor => AccessPattern::coalesced::<T>(m * n),
            Layout::RowMajor => AccessPattern::strided::<T>(m * n, n * T::BYTES),
        };
        KernelCost::new()
            .flops_total(2 * m * n + 2 * m)
            .fp64(T::IS_F64)
            .read(a_pattern)
            .read(AccessPattern::broadcast::<T>(m * n))
            .read(AccessPattern::coalesced::<T>(m))
            .write(AccessPattern::coalesced::<T>(m))
            .active_threads_raw(m)
    }
}

/// `y ← αAᵀx + βy`, naive: one modeled thread per column.
///
/// With col-major storage lane j reads `A[i + j·ld]`: lanes stride by `m`
/// elements — *uncoalesced*. (Row-major flips it: coalesced.) This is the
/// kernel the two-pass variant below exists to replace.
pub struct GemvTNaiveK<T: Scalar> {
    pub a: DView<T>,
    pub layout: Layout,
    pub m: usize,
    pub n: usize,
    pub alpha: T,
    pub x: DView<T>,
    pub beta: T,
    pub y: DViewMut<T>,
}

impl<T: Scalar> Kernel for GemvTNaiveK<T> {
    fn name(&self) -> &'static str {
        "gemv_t_naive"
    }
    fn run(&self, t: &ThreadCtx) {
        let j = t.global_id();
        if j >= self.n {
            return;
        }
        let a = self.a.as_slice();
        let x = self.x.as_slice();
        let mut acc = T::ZERO;
        match self.layout {
            Layout::ColMajor => {
                let col = &a[j * self.m..(j + 1) * self.m];
                for (&aij, &xi) in col.iter().zip(x) {
                    acc = aij.mul_add(xi, acc);
                }
            }
            Layout::RowMajor => {
                for (i, &xi) in x.iter().enumerate() {
                    acc = a[j + i * self.n].mul_add(xi, acc);
                }
            }
        }
        let base = crate::blas::beta_scale(self.y.get(j), self.beta);
        self.y.set(j, self.alpha * acc + base);
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let m = self.m as u64;
        let n = self.n as u64;
        let a_pattern = match self.layout {
            Layout::ColMajor => AccessPattern::strided::<T>(m * n, m * T::BYTES),
            Layout::RowMajor => AccessPattern::coalesced::<T>(m * n),
        };
        KernelCost::new()
            .flops_total(2 * m * n + 2 * n)
            .fp64(T::IS_F64)
            .read(a_pattern)
            .read(AccessPattern::broadcast::<T>(m * n))
            .read(AccessPattern::coalesced::<T>(n))
            .write(AccessPattern::coalesced::<T>(n))
            .active_threads(cfg, n)
    }
}

/// Number of cooperating threads per column in the two-pass transposed gemv.
pub const GEMV_T_STRIPS: usize = 32;

/// Pass 1 of the coalesced `gemv_t` (col-major only): thread `(k, j)` sums
/// rows `k, k+32, …` of column `j`. Lanes with consecutive `k` read
/// consecutive rows — coalesced.
pub struct GemvTPass1K<T: Scalar> {
    pub a: DView<T>,
    pub m: usize,
    pub n: usize,
    pub x: DView<T>,
    pub partials: DViewMut<T>,
}

impl<T: Scalar> Kernel for GemvTPass1K<T> {
    fn name(&self) -> &'static str {
        "gemv_t_pass1"
    }
    fn run(&self, t: &ThreadCtx) {
        let tid = t.global_id();
        let s = GEMV_T_STRIPS;
        if tid >= self.n * s {
            return;
        }
        let j = tid / s;
        let k = tid % s;
        let a = self.a.as_slice();
        let x = self.x.as_slice();
        let col = &a[j * self.m..(j + 1) * self.m];
        let mut acc = T::ZERO;
        let mut i = k;
        while i < self.m {
            acc = col[i].mul_add(x[i], acc);
            i += s;
        }
        self.partials.set(tid, acc);
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let m = self.m as u64;
        let n = self.n as u64;
        let s = GEMV_T_STRIPS as u64;
        KernelCost::new()
            .flops_total(2 * m * n)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(m * n))
            .read(AccessPattern::coalesced::<T>(m * n))
            .write(AccessPattern::coalesced::<T>(n * s))
            .active_threads(cfg, n * s)
    }
}

/// Pass 2 of the coalesced `gemv_t`: one thread per column reduces its 32
/// partials and applies `α`/`β`.
pub struct GemvTPass2K<T: Scalar> {
    pub partials: DView<T>,
    pub n: usize,
    pub alpha: T,
    pub beta: T,
    pub y: DViewMut<T>,
}

impl<T: Scalar> Kernel for GemvTPass2K<T> {
    fn name(&self) -> &'static str {
        "gemv_t_pass2"
    }
    fn run(&self, t: &ThreadCtx) {
        let j = t.global_id();
        if j >= self.n {
            return;
        }
        let s = GEMV_T_STRIPS;
        let p = self.partials.as_slice();
        let mut acc = T::ZERO;
        for &v in &p[j * s..(j + 1) * s] {
            acc += v;
        }
        let base = crate::blas::beta_scale(self.y.get(j), self.beta);
        self.y.set(j, self.alpha * acc + base);
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let n = self.n as u64;
        let s = GEMV_T_STRIPS as u64;
        KernelCost::new()
            .flops_total(n * s + 2 * n)
            .fp64(T::IS_F64)
            .read(AccessPattern::strided::<T>(n * s, s * T::BYTES))
            .read(AccessPattern::coalesced::<T>(n))
            .write(AccessPattern::coalesced::<T>(n))
            .active_threads(cfg, n)
    }
}

/// Rank-1 update `A ← A + αxyᵀ`.
///
/// Modeled geometry: one thread per element in storage order (coalesced on
/// `A` regardless of layout; the small operand vector on the lane-varying
/// axis is coalesced, the other is broadcast). Functional geometry: one
/// iteration per storage column.
pub struct GerK<T: Scalar> {
    pub alpha: T,
    pub x: DView<T>,
    pub y: DView<T>,
    pub a: DViewMut<T>,
    pub m: usize,
    pub n: usize,
    pub layout: Layout,
}

impl<T: Scalar> Kernel for GerK<T> {
    fn name(&self) -> &'static str {
        "ger"
    }
    fn run(&self, t: &ThreadCtx) {
        let a = self.a.as_mut_slice();
        match self.layout {
            Layout::ColMajor => {
                let j = t.global_id();
                if j >= self.n {
                    return;
                }
                let s = self.alpha * self.y.get(j);
                let x = self.x.as_slice();
                for (aij, &xi) in a[j * self.m..(j + 1) * self.m].iter_mut().zip(x) {
                    *aij = s.mul_add(xi, *aij);
                }
            }
            Layout::RowMajor => {
                let i = t.global_id();
                if i >= self.m {
                    return;
                }
                let s = self.alpha * self.x.get(i);
                let y = self.y.as_slice();
                for (aij, &yj) in a[i * self.n..(i + 1) * self.n].iter_mut().zip(y) {
                    *aij = s.mul_add(yj, *aij);
                }
            }
        }
    }
    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let mn = (self.m * self.n) as u64;
        KernelCost::new()
            .flops_total(2 * mn)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(mn))
            .read(AccessPattern::coalesced::<T>(mn))
            .read(AccessPattern::broadcast::<T>(mn))
            .write(AccessPattern::coalesced::<T>(mn))
            .active_threads_raw(mn)
    }
}

// --------------------------------------------------------------------------
// Basis pivot-update kernels (the paper's per-iteration core).
// --------------------------------------------------------------------------

/// Compute the eta column: `eta[i] = −α[i]/α[p]` for `i ≠ p`,
/// `eta[p] = 1/α[p]`.
pub struct EtaK<T: Scalar> {
    pub alpha: DView<T>,
    pub p: usize,
    pub eta: DViewMut<T>,
    pub m: usize,
}

impl<T: Scalar> Kernel for EtaK<T> {
    fn name(&self) -> &'static str {
        "eta"
    }
    fn run(&self, t: &ThreadCtx) {
        let i = t.global_id();
        if i >= self.m {
            return;
        }
        let ap = self.alpha.get(self.p);
        if i == self.p {
            self.eta.set(i, T::ONE / ap);
        } else {
            self.eta.set(i, -self.alpha.get(i) / ap);
        }
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let m = self.m as u64;
        KernelCost::new()
            .flops_total(2 * m)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(m))
            .read(AccessPattern::broadcast::<T>(m))
            .write(AccessPattern::coalesced::<T>(m))
            .active_threads(cfg, m)
    }
}

/// Extract row `p` of a matrix into a contiguous vector.
///
/// In col-major storage a row is strided by `m` elements — an honest
/// uncoalesced read the paper's implementation also paid once per iteration.
pub struct RowExtractK<T: Scalar> {
    pub mat: DView<T>,
    pub rows: usize,
    pub cols: usize,
    pub layout: Layout,
    pub p: usize,
    pub out: DViewMut<T>,
}

impl<T: Scalar> Kernel for RowExtractK<T> {
    fn name(&self) -> &'static str {
        "row_extract"
    }
    fn run(&self, t: &ThreadCtx) {
        let j = t.global_id();
        if j >= self.cols {
            return;
        }
        let idx = match self.layout {
            Layout::ColMajor => self.p + j * self.rows,
            Layout::RowMajor => j + self.p * self.cols,
        };
        self.out.set(j, self.mat.get(idx));
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let n = self.cols as u64;
        let pattern = match self.layout {
            Layout::ColMajor => AccessPattern::strided::<T>(n, self.rows as u64 * T::BYTES),
            Layout::RowMajor => AccessPattern::coalesced::<T>(n),
        };
        KernelCost::new()
            .read(pattern)
            .write(AccessPattern::coalesced::<T>(n))
            .active_threads(cfg, n)
    }
}

/// Apply the eta (Gauss–Jordan column elimination) transformation to a
/// `rows × cols` matrix in place:
/// `M[i,j] ← (i == p ? 0 : M[i,j]) + eta[i]·rowp[j]`.
///
/// Used for the revised method's `B⁻¹ ← E·B⁻¹` update (square) and for the
/// full-tableau baseline's elimination step (rectangular) — the O(rows·cols)
/// kernel per-iteration time is dominated by. Modeled geometry: one thread
/// per element in storage order (coalesced read+write of `M`; the
/// lane-varying operand vector coalesced, the other broadcast). Branchless,
/// so no divergence penalty.
pub struct PivotUpdateK<T: Scalar> {
    pub mat: DViewMut<T>,
    pub eta: DView<T>,
    pub rowp: DView<T>,
    pub p: usize,
    pub rows: usize,
    pub cols: usize,
    pub layout: Layout,
}

impl<T: Scalar> Kernel for PivotUpdateK<T> {
    fn name(&self) -> &'static str {
        "pivot_update"
    }
    fn run(&self, t: &ThreadCtx) {
        let (m, n) = (self.rows, self.cols);
        let mat = self.mat.as_mut_slice();
        let eta = self.eta.as_slice();
        let rowp = self.rowp.as_slice();
        match self.layout {
            Layout::ColMajor => {
                let j = t.global_id();
                if j >= n {
                    return;
                }
                let rpj = rowp[j];
                let col = &mut mat[j * m..(j + 1) * m];
                for (i, (b, &ei)) in col.iter_mut().zip(eta).enumerate() {
                    let old = if i == self.p { T::ZERO } else { *b };
                    *b = ei.mul_add(rpj, old);
                }
            }
            Layout::RowMajor => {
                let i = t.global_id();
                if i >= m {
                    return;
                }
                let ei = eta[i];
                let keep = i != self.p;
                let row = &mut mat[i * n..(i + 1) * n];
                for (b, &rpj) in row.iter_mut().zip(rowp) {
                    let old = if keep { *b } else { T::ZERO };
                    *b = ei.mul_add(rpj, old);
                }
            }
        }
    }
    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let mn = (self.rows * self.cols) as u64;
        KernelCost::new()
            .flops_total(2 * mn)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(mn))
            .read(AccessPattern::coalesced::<T>(mn))
            .read(AccessPattern::broadcast::<T>(mn))
            .write(AccessPattern::coalesced::<T>(mn))
            .active_threads_raw(mn)
    }
}
