//! Dense matrices resident in simulated device memory.

use gpu_sim::{DView, DViewMut, DeviceBuffer, DeviceError, Gpu};

use crate::dense::DenseMatrix;
use crate::scalar::Scalar;

/// Storage order of a device matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Element `(i, j)` at `i + j·rows` — the paper's (coalescing-friendly)
    /// choice for one-thread-per-row kernels.
    ColMajor,
    /// Element `(i, j)` at `j + i·cols` — kept for the coalescing ablation.
    RowMajor,
}

/// A dense matrix in device memory.
pub struct DeviceMatrix<T: Scalar> {
    buf: DeviceBuffer<T>,
    rows: usize,
    cols: usize,
    layout: Layout,
}

impl<T: Scalar> DeviceMatrix<T> {
    /// Upload a host matrix in the requested layout.
    pub fn upload(gpu: &Gpu, m: &DenseMatrix<T>, layout: Layout) -> Result<Self, DeviceError> {
        let data = match layout {
            Layout::ColMajor => m.as_slice().to_vec(),
            Layout::RowMajor => m.to_row_major(),
        };
        Ok(DeviceMatrix {
            buf: gpu.try_htod(&data)?,
            rows: m.rows(),
            cols: m.cols(),
            layout,
        })
    }

    /// Allocate a zero device matrix.
    pub fn zeros(gpu: &Gpu, rows: usize, cols: usize, layout: Layout) -> Result<Self, DeviceError> {
        Ok(DeviceMatrix {
            buf: gpu.try_alloc(rows * cols, T::ZERO)?,
            rows,
            cols,
            layout,
        })
    }

    /// Allocate a device identity matrix (uploaded, transfer charged —
    /// matches initializing `B⁻¹ = I` on the host and copying it over).
    pub fn identity(gpu: &Gpu, n: usize, layout: Layout) -> Result<Self, DeviceError> {
        DeviceMatrix::upload(gpu, &DenseMatrix::identity(n), layout)
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Leading dimension: distance in elements between consecutive entries
    /// of a row (col-major) or column (row-major).
    pub fn ld(&self) -> usize {
        match self.layout {
            Layout::ColMajor => self.rows,
            Layout::RowMajor => self.cols,
        }
    }

    /// Flat storage index of `(i, j)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.rows && j < self.cols);
        match self.layout {
            Layout::ColMajor => i + j * self.rows,
            Layout::RowMajor => j + i * self.cols,
        }
    }

    /// Read-only view of the storage.
    pub fn view(&self) -> DView<T> {
        self.buf.view()
    }

    /// Mutable view of the storage.
    pub fn view_mut(&mut self) -> DViewMut<T> {
        self.buf.view_mut()
    }

    /// Zero-copy view of column `j` (col-major only — in row-major a column
    /// is strided and has no contiguous view).
    pub fn col_view(&self, j: usize) -> DView<T> {
        assert_eq!(self.layout, Layout::ColMajor, "col_view requires col-major");
        self.buf.view().subview(j * self.rows, self.rows)
    }

    /// Download to a host [`DenseMatrix`], charging the transfer.
    pub fn download(&self, gpu: &Gpu) -> Result<DenseMatrix<T>, DeviceError> {
        let raw = gpu.try_dtoh(&self.buf)?;
        Ok(match self.layout {
            Layout::ColMajor => DenseMatrix::from_col_major(self.rows, self.cols, raw),
            Layout::RowMajor => {
                let mut m = DenseMatrix::zeros(self.rows, self.cols);
                for i in 0..self.rows {
                    for j in 0..self.cols {
                        m.set(i, j, raw[j + i * self.cols]);
                    }
                }
                m
            }
        })
    }

    /// The underlying buffer (for size accounting in tests).
    pub fn buffer(&self) -> &DeviceBuffer<T> {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    #[test]
    fn upload_download_roundtrip_both_layouts() {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let host = DenseMatrix::from_rows(&[vec![1.0f32, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        for layout in [Layout::ColMajor, Layout::RowMajor] {
            let d = DeviceMatrix::upload(&gpu, &host, layout).unwrap();
            assert_eq!(d.download(&gpu).unwrap(), host);
        }
    }

    #[test]
    fn idx_matches_layout() {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let c = DeviceMatrix::<f32>::zeros(&gpu, 3, 2, Layout::ColMajor).unwrap();
        let r = DeviceMatrix::<f32>::zeros(&gpu, 3, 2, Layout::RowMajor).unwrap();
        assert_eq!(c.idx(1, 1), 4);
        assert_eq!(r.idx(1, 1), 3);
        assert_eq!(c.ld(), 3);
        assert_eq!(r.ld(), 2);
    }

    #[test]
    fn col_view_is_contiguous_column() {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let host = DenseMatrix::from_rows(&[vec![1.0f32, 2.0], vec![3.0, 4.0]]);
        let d = DeviceMatrix::upload(&gpu, &host, Layout::ColMajor).unwrap();
        let col1 = d.col_view(1);
        assert_eq!(col1.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "col-major")]
    fn col_view_rejects_row_major() {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let d = DeviceMatrix::<f32>::zeros(&gpu, 2, 2, Layout::RowMajor).unwrap();
        let _ = d.col_view(0);
    }

    #[test]
    fn identity_charges_transfer() {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let before = gpu.counters().h2d_count;
        let _i = DeviceMatrix::<f64>::identity(&gpu, 16, Layout::ColMajor).unwrap();
        assert_eq!(gpu.counters().h2d_count, before + 1);
    }
}
