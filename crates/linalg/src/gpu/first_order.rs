//! Fused first-order (PDHG) update kernels.
//!
//! One restarted-Halpern PDHG iteration on the standardized LP is four
//! kernels — `spmv_t` (Aᵀy gather), the primal update below, `spmv`
//! (A·x̄ scatter-free CSR product) and the dual update below — submitted
//! through one [`Launcher`], so a fused chain charges a single launch
//! overhead per iteration exactly like the simplex pivot chain does.
//!
//! The updates fold three textbook steps into one elementwise pass each:
//!
//! ```text
//! primal:  x⁺ = max(0, x − τ(c − g))        (g = Aᵀy)
//!          x̄  = 2x⁺ − x                      (reflection)
//!          x  = λx⁺ + (1−λ)x₀                (Halpern anchor pull)
//! dual:    y⁺ = y + σ(b − Ax̄)
//!          y  = λy⁺ + (1−λ)y₀
//! ```
//!
//! with λ = (k+1)/(k+2) and `x₀`/`y₀` the restart anchor. Everything is
//! coalesced: lane `j` touches only element `j` of each operand.

use gpu_sim::{
    AccessPattern, DView, DViewMut, DeviceError, Kernel, KernelCost, LaunchConfig, Launcher,
    ThreadCtx,
};

use crate::scalar::Scalar;

use super::blas::poison_if_corrupted;

const BLOCK: u32 = 128;

/// Fused PDHG primal step: projection, reflection and Halpern fold.
pub struct PdhgPrimalK<T: Scalar> {
    /// Current primal iterate; overwritten with the anchored new iterate.
    pub x: DViewMut<T>,
    /// Reflected iterate `2x⁺ − x`, consumed by the following `spmv`.
    pub xbar: DViewMut<T>,
    /// `Aᵀy` from the preceding gather.
    pub g: DView<T>,
    /// Objective coefficients.
    pub c: DView<T>,
    /// Restart anchor `x₀`.
    pub x0: DView<T>,
    /// Primal step size τ.
    pub tau: T,
    /// Halpern weight λ = (k+1)/(k+2) on the PDHG step.
    pub lam: T,
    /// Anchor weight 1 − λ.
    pub mu: T,
    /// Vector length.
    pub n: usize,
}

impl<T: Scalar> Kernel for PdhgPrimalK<T> {
    fn name(&self) -> &'static str {
        "pdhg_primal"
    }
    fn run(&self, t: &ThreadCtx) {
        let j = t.global_id();
        if j >= self.n {
            return;
        }
        let xj = self.x.get(j);
        let step = xj - self.tau * (self.c.get(j) - self.g.get(j));
        let xnew = if step > T::ZERO { step } else { T::ZERO };
        self.xbar.set(j, xnew + xnew - xj);
        self.x.set(j, self.lam * xnew + self.mu * self.x0.get(j));
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let n = self.n as u64;
        KernelCost::new()
            .flops_total(8 * n)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(n))
            .read(AccessPattern::coalesced::<T>(n))
            .read(AccessPattern::coalesced::<T>(n))
            .read(AccessPattern::coalesced::<T>(n))
            .write(AccessPattern::coalesced::<T>(n))
            .write(AccessPattern::coalesced::<T>(n))
            .active_threads(cfg, n)
    }
}

/// Fused PDHG dual step: gradient ascent on the residual plus Halpern fold.
pub struct PdhgDualK<T: Scalar> {
    /// Current dual iterate; overwritten with the anchored new iterate.
    pub y: DViewMut<T>,
    /// `A·x̄` from the preceding product.
    pub ax: DView<T>,
    /// Right-hand side.
    pub b: DView<T>,
    /// Restart anchor `y₀`.
    pub y0: DView<T>,
    /// Dual step size σ.
    pub sigma: T,
    /// Halpern weight λ.
    pub lam: T,
    /// Anchor weight 1 − λ.
    pub mu: T,
    /// Vector length.
    pub m: usize,
}

impl<T: Scalar> Kernel for PdhgDualK<T> {
    fn name(&self) -> &'static str {
        "pdhg_dual"
    }
    fn run(&self, t: &ThreadCtx) {
        let i = t.global_id();
        if i >= self.m {
            return;
        }
        let ynew = self.yi(i);
        self.y.set(i, self.lam * ynew + self.mu * self.y0.get(i));
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let m = self.m as u64;
        KernelCost::new()
            .flops_total(6 * m)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(m))
            .read(AccessPattern::coalesced::<T>(m))
            .read(AccessPattern::coalesced::<T>(m))
            .read(AccessPattern::coalesced::<T>(m))
            .write(AccessPattern::coalesced::<T>(m))
            .active_threads(cfg, m)
    }
}

impl<T: Scalar> PdhgDualK<T> {
    #[inline]
    fn yi(&self, i: usize) -> T {
        self.sigma
            .mul_add(self.b.get(i) - self.ax.get(i), self.y.get(i))
    }
}

/// Submit the fused primal update through `l`.
#[allow(clippy::too_many_arguments)]
pub fn pdhg_primal_on<T: Scalar>(
    l: &mut Launcher<'_, '_>,
    x: DViewMut<T>,
    xbar: DViewMut<T>,
    g: DView<T>,
    c: DView<T>,
    x0: DView<T>,
    tau: T,
    lam: T,
) -> Result<(), DeviceError> {
    let n = x.len();
    assert!(
        xbar.len() == n && g.len() == n && c.len() == n && x0.len() == n,
        "pdhg_primal: operand length mismatch"
    );
    let out = x;
    l.try_launch(
        LaunchConfig::for_elems(n, BLOCK),
        &PdhgPrimalK {
            x,
            xbar,
            g,
            c,
            x0,
            tau,
            lam,
            mu: T::ONE - lam,
            n,
        },
    )?;
    poison_if_corrupted(l.gpu(), &out);
    Ok(())
}

/// Submit the fused dual update through `l`.
pub fn pdhg_dual_on<T: Scalar>(
    l: &mut Launcher<'_, '_>,
    y: DViewMut<T>,
    ax: DView<T>,
    b: DView<T>,
    y0: DView<T>,
    sigma: T,
    lam: T,
) -> Result<(), DeviceError> {
    let m = y.len();
    assert!(
        ax.len() == m && b.len() == m && y0.len() == m,
        "pdhg_dual: operand length mismatch"
    );
    let out = y;
    l.try_launch(
        LaunchConfig::for_elems(m, BLOCK),
        &PdhgDualK {
            y,
            ax,
            b,
            y0,
            sigma,
            lam,
            mu: T::ONE - lam,
            m,
        },
    )?;
    poison_if_corrupted(l.gpu(), &out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Gpu};

    #[test]
    fn primal_projects_reflects_and_anchors() {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let mut x = gpu.htod(&[1.0f64, 0.5, 2.0]);
        let mut xbar = gpu.alloc(3, 0.0f64);
        let g = gpu.htod(&[0.0f64, 0.0, 0.0]);
        let c = gpu.htod(&[1.0f64, 10.0, -1.0]);
        let x0 = gpu.htod(&[0.0f64, 0.0, 0.0]);
        // τ = 1, λ = 1/2: x⁺ = max(0, x − c) = [0, 0, 3].
        pdhg_primal_on(
            &mut Launcher::Direct(&gpu),
            x.view_mut(),
            xbar.view_mut(),
            g.view(),
            c.view(),
            x0.view(),
            1.0,
            0.5,
        )
        .unwrap();
        assert_eq!(gpu.dtoh(&xbar), vec![-1.0, -0.5, 4.0]); // 2x⁺ − x
        assert_eq!(gpu.dtoh(&x), vec![0.0, 0.0, 1.5]); // λx⁺ + (1−λ)x₀
    }

    #[test]
    fn dual_ascends_and_anchors() {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let mut y = gpu.htod(&[1.0f64, -1.0]);
        let ax = gpu.htod(&[0.5f64, 2.0]);
        let b = gpu.htod(&[1.0f64, 1.0]);
        let y0 = gpu.htod(&[0.0f64, 4.0]);
        // σ = 2, λ = 3/4: y⁺ = y + 2(b − ax) = [2, −3].
        pdhg_dual_on(
            &mut Launcher::Direct(&gpu),
            y.view_mut(),
            ax.view(),
            b.view(),
            y0.view(),
            2.0,
            0.75,
        )
        .unwrap();
        assert_eq!(gpu.dtoh(&y), vec![1.5, -1.25]);
    }
}
