//! Block-per-LP kernels over the SoA [`crate::batch::DenseBatchLayout`]
//! ordering: one simplex family advances in lockstep, batch index innermost
//! so a warp's lanes (consecutive members) touch consecutive addresses.
//!
//! Every kernel replicates the *serial* arithmetic of the CPU dense backend
//! per lane — same loop order, same `mul_add` shapes, same tie-breaking —
//! so a lane's results are bitwise identical to a solo solve. The cost
//! descriptors declare the modeled geometry (`active_threads_raw`, one
//! thread-block per LP) and coalesced SoA traffic; `lanes` is the
//! host-known count of lanes doing useful work this launch.
//!
//! Masking: `gate` holds one `u32` per lane; bit 0 means "runs this launch"
//! (the driver reuses it for both the convergence mask and the per-round
//! pivot mask). `only != usize::MAX` overrides the gate and runs exactly
//! one lane — the solo path used for per-member irregular work.

use gpu_sim::{AccessPattern, DView, DViewMut, Kernel, KernelCost, LaunchConfig, ThreadCtx};

use crate::scalar::Scalar;

/// Gate bit 0: the lane participates in this launch.
pub const CTL_ACTIVE: u32 = 1;
/// Gate bit 1: the lane prices with Bland's rule this round.
pub const CTL_BLAND: u32 = 2;

#[inline]
fn lane_runs(gate: &DView<u32>, only: usize, lane: usize) -> bool {
    if only != usize::MAX {
        lane == only
    } else {
        gate.get(lane) & CTL_ACTIVE != 0
    }
}

/// Batched BTRAN: `π_b = (B⁻¹_b)ᵀ c_{B,b}` for every gated lane, in the CPU
/// `gemv_t` loop order.
pub struct BatchBtranK<T: Scalar> {
    pub binv: DView<T>,
    pub cb: DView<T>,
    pub pi: DViewMut<T>,
    pub gate: DView<u32>,
    pub only: usize,
    pub width: usize,
    pub m: usize,
    pub lanes: u64,
}

impl<T: Scalar> Kernel for BatchBtranK<T> {
    fn name(&self) -> &'static str {
        "batch_btran"
    }

    fn run(&self, t: &ThreadCtx) {
        let b = t.global_id();
        if b >= self.width || !lane_runs(&self.gate, self.only, b) {
            return;
        }
        let (m, w) = (self.m, self.width);
        for j in 0..m {
            let mut acc = T::ZERO;
            for i in 0..m {
                acc = self
                    .binv
                    .get((i + j * m) * w + b)
                    .mul_add(self.cb.get(i * w + b), acc);
            }
            let yj = j * w + b;
            // Same non-finite guard as the FTRAN β-scale: 0·NaN = NaN would
            // make a corrupted π unhealable.
            let prev = self.pi.get(yj);
            let scaled = if prev.is_finite() {
                T::ZERO * prev
            } else {
                T::ZERO
            };
            self.pi.set(yj, T::ONE * acc + scaled);
        }
    }

    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let (m, l) = (self.m as u64, self.lanes);
        KernelCost::new()
            .flops_total(2 * m * m * l)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(m * m * l))
            .read(AccessPattern::coalesced::<T>(m * l))
            .write(AccessPattern::coalesced::<T>(m * l))
            .active_threads_raw(m * l)
    }
}

/// Batched pricing over a column window: `d_b[j] = c_b[j] − π_bᵀ a_b[:,j]`,
/// in the CPU `dot` accumulation order.
pub struct BatchPriceK<T: Scalar> {
    pub a: DView<T>,
    pub pi: DView<T>,
    pub costs: DView<T>,
    pub d: DViewMut<T>,
    pub gate: DView<u32>,
    pub only: usize,
    pub width: usize,
    pub m: usize,
    pub start: usize,
    pub len: usize,
    pub lanes: u64,
}

impl<T: Scalar> Kernel for BatchPriceK<T> {
    fn name(&self) -> &'static str {
        "batch_price"
    }

    fn run(&self, t: &ThreadCtx) {
        let b = t.global_id();
        if b >= self.width || !lane_runs(&self.gate, self.only, b) {
            return;
        }
        let (m, w) = (self.m, self.width);
        for j in self.start..self.start + self.len {
            let mut acc = T::ZERO;
            for i in 0..m {
                acc = self
                    .pi
                    .get(i * w + b)
                    .mul_add(self.a.get((i + j * m) * w + b), acc);
            }
            self.d.set(j * w + b, self.costs.get(j * w + b) - acc);
        }
    }

    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let (m, n, l) = (self.m as u64, self.len as u64, self.lanes);
        KernelCost::new()
            .flops_total(2 * m * n * l)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(m * n * l))
            .read(AccessPattern::coalesced::<T>((m + n) * l))
            .write(AccessPattern::coalesced::<T>(n * l))
            .active_threads_raw(n * l)
    }
}

/// Selection override for [`BatchSelectK`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum SelectRule {
    /// Per-lane: Bland when the lane's [`CTL_BLAND`] gate bit is set.
    PerLane,
    /// Force Dantzig for the gated lanes.
    Dantzig,
    /// Force Bland for the gated lanes.
    Bland,
}

/// Batched entering-variable selection. Writes the column (or `u32::MAX`
/// for "converged") and its reduced cost, replicating the CPU backend's
/// scan order and `!(dj < best)` tie-breaking.
pub struct BatchSelectK<T: Scalar> {
    pub d: DView<T>,
    pub basic: DView<u32>,
    pub q_sel: DViewMut<u32>,
    pub dq: DViewMut<T>,
    pub tol: T,
    pub rule: SelectRule,
    pub gate: DView<u32>,
    pub only: usize,
    pub width: usize,
    pub n_active: usize,
    pub start: usize,
    pub len: usize,
    pub lanes: u64,
}

impl<T: Scalar> Kernel for BatchSelectK<T> {
    fn name(&self) -> &'static str {
        "batch_select"
    }

    fn run(&self, t: &ThreadCtx) {
        let b = t.global_id();
        if b >= self.width || !lane_runs(&self.gate, self.only, b) {
            return;
        }
        let w = self.width;
        let bland = match self.rule {
            SelectRule::Dantzig => false,
            SelectRule::Bland => true,
            SelectRule::PerLane => self.gate.get(b) & CTL_BLAND != 0,
        };
        let mut best: Option<(usize, T)> = None;
        if bland {
            // Bland scans the full active range for the first improving
            // nonbasic column, exactly as the CPU backend does.
            for j in 0..self.n_active {
                if self.basic.get(j * w + b) == 0 {
                    let dj = self.d.get(j * w + b);
                    if dj < -self.tol {
                        best = Some((j, dj));
                        break;
                    }
                }
            }
        } else {
            for j in self.start..self.start + self.len {
                if self.basic.get(j * w + b) != 0 {
                    continue;
                }
                let dj = self.d.get(j * w + b);
                if dj < -self.tol {
                    match best {
                        Some((_, bv)) if !(dj < bv) => {}
                        _ => best = Some((j, dj)),
                    }
                }
            }
        }
        match best {
            Some((j, v)) => {
                self.q_sel.set(b, j as u32);
                self.dq.set(b, v);
            }
            None => {
                self.q_sel.set(b, u32::MAX);
                self.dq.set(b, T::ZERO);
            }
        }
    }

    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let (n, l) = (self.len.max(1) as u64, self.lanes);
        KernelCost::new()
            .flops_total(n * l)
            .fp64(T::IS_F64)
            .int_ops_total(n * l)
            .read(AccessPattern::coalesced::<T>(n * l))
            .read(AccessPattern::coalesced::<u32>(n * l))
            .write(AccessPattern::coalesced::<T>(2 * l))
            .active_threads_raw(n * l)
    }
}

/// Batched FTRAN: `α_b = B⁻¹_b a_b[:,q_b]`, in the CPU `gemv_n` loop order
/// (β-scale first, zero-coefficient columns skipped).
pub struct BatchFtranK<T: Scalar> {
    pub binv: DView<T>,
    pub a: DView<T>,
    pub q_sel: DView<u32>,
    pub alpha: DViewMut<T>,
    /// `usize::MAX` reads per-lane `q_sel`; otherwise a fixed column.
    pub q_override: usize,
    pub gate: DView<u32>,
    pub only: usize,
    pub width: usize,
    pub m: usize,
    pub lanes: u64,
}

impl<T: Scalar> Kernel for BatchFtranK<T> {
    fn name(&self) -> &'static str {
        "batch_ftran"
    }

    fn run(&self, t: &ThreadCtx) {
        let b = t.global_id();
        if b >= self.width || !lane_runs(&self.gate, self.only, b) {
            return;
        }
        let q = if self.q_override != usize::MAX {
            self.q_override
        } else {
            let qs = self.q_sel.get(b);
            if qs == u32::MAX {
                return;
            }
            qs as usize
        };
        let (m, w) = (self.m, self.width);
        for i in 0..m {
            let k = i * w + b;
            // β-scale in the CPU loop order — except a non-finite stale
            // value is cleared outright (BLAS β = 0 semantics): NaN·0 = NaN
            // would keep a poisoned α sticky across the very reinversion
            // that is supposed to heal it.
            let prev = self.alpha.get(k);
            let zeroed = if prev.is_finite() {
                prev * T::ZERO
            } else {
                T::ZERO
            };
            self.alpha.set(k, zeroed);
        }
        for j in 0..m {
            let s = T::ONE * self.a.get((j + q * m) * w + b);
            if s == T::ZERO {
                continue;
            }
            for i in 0..m {
                let k = i * w + b;
                self.alpha.set(
                    k,
                    s.mul_add(self.binv.get((i + j * m) * w + b), self.alpha.get(k)),
                );
            }
        }
    }

    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let (m, l) = (self.m as u64, self.lanes);
        KernelCost::new()
            .flops_total(2 * m * m * l)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>((m * m + m) * l))
            .write(AccessPattern::coalesced::<T>(m * l))
            .active_threads_raw(m * l)
    }
}

/// Batched ratio test: writes the leaving row (or `u32::MAX` for unbounded)
/// and the step length, with the CPU backend's degenerate-step clamp and
/// tie-breaking.
pub struct BatchRatioK<T: Scalar> {
    pub alpha: DView<T>,
    pub beta: DView<T>,
    pub p_sel: DViewMut<u32>,
    pub theta: DViewMut<T>,
    pub pivot_tol: T,
    pub gate: DView<u32>,
    pub only: usize,
    pub width: usize,
    pub m: usize,
    pub lanes: u64,
}

impl<T: Scalar> Kernel for BatchRatioK<T> {
    fn name(&self) -> &'static str {
        "batch_ratio"
    }

    fn run(&self, t: &ThreadCtx) {
        let b = t.global_id();
        if b >= self.width || !lane_runs(&self.gate, self.only, b) {
            return;
        }
        let (m, w) = (self.m, self.width);
        let mut best: Option<(usize, T)> = None;
        let mut poisoned = false;
        for i in 0..m {
            let a = self.alpha.get(i * w + b);
            if !a.is_finite() {
                poisoned = true;
                continue;
            }
            if a > self.pivot_tol {
                let bi = self.beta.get(i * w + b);
                if !bi.is_finite() {
                    // NaN compares false against zero, so without this
                    // check a corrupted β row would silently clamp to a
                    // ratio of 0 and the lane would pivot on garbage with
                    // θ = 0 — undetectable downstream.
                    poisoned = true;
                    continue;
                }
                let r = if bi > T::ZERO { bi / a } else { T::ZERO };
                match best {
                    Some((_, br)) if !(r < br) => {}
                    _ => best = Some((i, r)),
                }
            }
        }
        if poisoned {
            // Non-finite lane state only arises from corruption: surface a
            // non-finite step length so the lockstep driver runs this
            // lane's emergency reinversion instead of trusting the ratio.
            self.p_sel.set(b, best.map_or(u32::MAX, |(p, _)| p as u32));
            self.theta.set(b, T::from_f64(f64::NAN));
            return;
        }
        match best {
            Some((p, th)) => {
                self.p_sel.set(b, p as u32);
                self.theta.set(b, th);
            }
            None => {
                self.p_sel.set(b, u32::MAX);
                self.theta.set(b, T::ZERO);
            }
        }
    }

    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let (m, l) = (self.m as u64, self.lanes);
        KernelCost::new()
            .flops_total(2 * m * l)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(2 * m * l))
            .write(AccessPattern::coalesced::<T>(2 * l))
            .active_threads_raw(m * l)
    }
}

/// Batched basis-inverse pivot update (β then the η sweep of `B⁻¹`), the
/// CPU backend's update arithmetic per lane: the pivot-row element is read
/// before its column is overwritten and η is recomputed from α on the fly —
/// bitwise the same values as the precomputed-η formulation.
pub struct BatchPivotK<T: Scalar> {
    pub binv: DViewMut<T>,
    pub beta: DViewMut<T>,
    pub alpha: DView<T>,
    pub p_sel: DView<u32>,
    pub theta_sel: DView<T>,
    /// `usize::MAX` reads per-lane `p_sel`/`theta_sel`; otherwise fixed.
    pub p_override: usize,
    pub theta_override: T,
    pub gate: DView<u32>,
    pub only: usize,
    pub width: usize,
    pub m: usize,
    pub lanes: u64,
}

impl<T: Scalar> Kernel for BatchPivotK<T> {
    fn name(&self) -> &'static str {
        "batch_pivot"
    }

    fn run(&self, t: &ThreadCtx) {
        let b = t.global_id();
        if b >= self.width || !lane_runs(&self.gate, self.only, b) {
            return;
        }
        let (p, theta) = if self.p_override != usize::MAX {
            (self.p_override, self.theta_override)
        } else {
            let ps = self.p_sel.get(b);
            if ps == u32::MAX {
                return;
            }
            (ps as usize, self.theta_sel.get(b))
        };
        let (m, w) = (self.m, self.width);
        for i in 0..m {
            let k = i * w + b;
            let v = if i == p {
                theta
            } else {
                (self.beta.get(k) - theta * self.alpha.get(i * w + b)).maxs(T::ZERO)
            };
            self.beta.set(k, v);
        }
        let ap = self.alpha.get(p * w + b);
        for j in 0..m {
            let rpj = self.binv.get((p + j * m) * w + b);
            for i in 0..m {
                let ei = if i == p {
                    T::ONE / ap
                } else {
                    -self.alpha.get(i * w + b) / ap
                };
                let k = (i + j * m) * w + b;
                let old = if i == p { T::ZERO } else { self.binv.get(k) };
                self.binv.set(k, ei.mul_add(rpj, old));
            }
        }
    }

    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let (m, l) = (self.m as u64, self.lanes);
        KernelCost::new()
            .flops_total((2 * m * m + 4 * m) * l)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>((m * m + 2 * m) * l))
            .write(AccessPattern::coalesced::<T>((m * m + m) * l))
            .active_threads_raw(m * m * l)
    }
}

/// Batched basis bookkeeping after a pivot: flips the basic mask, records
/// the new basic column for the pivot row, and installs its phase cost
/// (`cb[p] = costs[q]` — phase-1 costs are all zero and an entering column
/// is never artificial, so this matches the solo driver's phase dispatch).
pub struct BatchBookK<T: Scalar> {
    pub q_sel: DView<u32>,
    pub p_sel: DView<u32>,
    pub basic: DViewMut<u32>,
    pub basic_of_row: DViewMut<u32>,
    pub cb: DViewMut<T>,
    pub costs: DView<T>,
    pub gate: DView<u32>,
    pub only: usize,
    pub width: usize,
    pub lanes: u64,
}

impl<T: Scalar> Kernel for BatchBookK<T> {
    fn name(&self) -> &'static str {
        "batch_bookkeep"
    }

    fn run(&self, t: &ThreadCtx) {
        let b = t.global_id();
        if b >= self.width || !lane_runs(&self.gate, self.only, b) {
            return;
        }
        let q = self.q_sel.get(b);
        let p = self.p_sel.get(b);
        if q == u32::MAX || p == u32::MAX {
            return;
        }
        let w = self.width;
        let (q, p) = (q as usize, p as usize);
        let old = self.basic_of_row.get(p * w + b) as usize;
        self.basic.set(old * w + b, 0);
        self.basic.set(q * w + b, 1);
        self.basic_of_row.set(p * w + b, q as u32);
        self.cb.set(p * w + b, self.costs.get(q * w + b));
    }

    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let l = self.lanes;
        KernelCost::new()
            .int_ops_total(4 * l)
            .read(AccessPattern::scattered::<u32>(3 * l))
            .write(AccessPattern::scattered::<u32>(3 * l))
            .write(AccessPattern::scattered::<T>(l))
            .active_threads_raw(l.max(1))
    }
}

/// Batched objective: `obj_b = c_{B,b}ᵀ β_b` in the CPU `dot` order.
pub struct BatchObjK<T: Scalar> {
    pub cb: DView<T>,
    pub beta: DView<T>,
    pub obj: DViewMut<T>,
    pub gate: DView<u32>,
    pub only: usize,
    pub width: usize,
    pub m: usize,
    pub lanes: u64,
}

impl<T: Scalar> Kernel for BatchObjK<T> {
    fn name(&self) -> &'static str {
        "batch_obj"
    }

    fn run(&self, t: &ThreadCtx) {
        let b = t.global_id();
        if b >= self.width || !lane_runs(&self.gate, self.only, b) {
            return;
        }
        let (m, w) = (self.m, self.width);
        let mut acc = T::ZERO;
        for i in 0..m {
            acc = self
                .cb
                .get(i * w + b)
                .mul_add(self.beta.get(i * w + b), acc);
        }
        self.obj.set(b, acc);
    }

    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        let (m, l) = (self.m as u64, self.lanes);
        KernelCost::new()
            .flops_total(2 * m * l)
            .fp64(T::IS_F64)
            .read(AccessPattern::coalesced::<T>(2 * m * l))
            .write(AccessPattern::scattered::<T>(l))
            .active_threads_raw(m * l)
    }
}

/// Scatter a contiguous staging buffer into one lane's SoA slots:
/// `dst[(offset + e) * width + lane] = src[e]`.
pub struct LaneScatterK<T: Scalar> {
    pub src: DView<T>,
    pub dst: DViewMut<T>,
    pub lane: usize,
    pub offset: usize,
    pub width: usize,
    pub len: usize,
}

impl<T: Scalar> Kernel for LaneScatterK<T> {
    fn name(&self) -> &'static str {
        "lane_scatter"
    }

    fn run(&self, t: &ThreadCtx) {
        let e = t.global_id();
        if e < self.len {
            self.dst
                .set((self.offset + e) * self.width + self.lane, self.src.get(e));
        }
    }

    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let n = self.len as u64;
        KernelCost::new()
            .read(AccessPattern::coalesced::<T>(n))
            .write(AccessPattern::strided::<T>(n, self.width as u64 * T::BYTES))
            .active_threads(cfg, n)
    }
}

/// Gather one lane's SoA slots into a contiguous staging buffer:
/// `dst[e] = src[(offset + e) * width + lane]`.
pub struct LaneGatherK<T: Scalar> {
    pub src: DView<T>,
    pub dst: DViewMut<T>,
    pub lane: usize,
    pub offset: usize,
    pub width: usize,
    pub len: usize,
}

impl<T: Scalar> Kernel for LaneGatherK<T> {
    fn name(&self) -> &'static str {
        "lane_gather"
    }

    fn run(&self, t: &ThreadCtx) {
        let e = t.global_id();
        if e < self.len {
            self.dst
                .set(e, self.src.get((self.offset + e) * self.width + self.lane));
        }
    }

    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        let n = self.len as u64;
        KernelCost::new()
            .read(AccessPattern::strided::<T>(n, self.width as u64 * T::BYTES))
            .write(AccessPattern::coalesced::<T>(n))
            .active_threads(cfg, n)
    }
}
