//! On-device Gauss–Jordan matrix inversion.
//!
//! Builds the augmented matrix `[B | I]` in device memory and applies the
//! eta elimination kernel once per column; after `m` eliminations the right
//! half is `B⁻¹`. No pivoting (row exchanges are miserable on 2009-era
//! GPUs) — the per-step pivot element is checked against a tolerance with a
//! one-scalar device→host read, and the routine reports failure on a small
//! pivot, exactly the trade paper-era device-side reinversions made.
//!
//! Compared to the host path (download basis → invert in f64 → upload B⁻¹),
//! this keeps everything resident: m × (3 launches + 1 scalar read) versus
//! two O(m²)-byte PCIe transfers plus O(m³) host flops.

use gpu_sim::{DeviceError, Gpu, LaunchConfig};

use super::blas::eliminate;
use super::kernels::CopyK;
use super::mat::{DeviceMatrix, Layout};
use crate::scalar::Scalar;

/// Invert a square col-major device matrix on the device.
///
/// Returns `Ok(None)` when a pivot falls below `pivot_tol` (caller should
/// fall back to the pivoting host inversion) and `Err` when the device
/// itself failed (injected fault).
pub fn invert_gauss_jordan<T: Scalar>(
    gpu: &Gpu,
    b: &DeviceMatrix<T>,
    pivot_tol: T,
) -> Result<Option<DeviceMatrix<T>>, DeviceError> {
    assert_eq!(b.rows(), b.cols(), "inverse of a non-square matrix");
    assert_eq!(
        b.layout(),
        Layout::ColMajor,
        "device inversion requires col-major"
    );
    let m = b.rows();
    if m == 0 {
        return Ok(Some(DeviceMatrix::zeros(gpu, 0, 0, Layout::ColMajor)?));
    }

    // Augmented [B | I], m × 2m, assembled on the device: copy B's columns,
    // then write the identity block (one coalesced fill per column is
    // wasteful; a single upload of the identity block is what real code
    // did — charge it as such).
    let mut aug = DeviceMatrix::<T>::zeros(gpu, m, 2 * m, Layout::ColMajor)?;
    for j in 0..m {
        let src = b.col_view(j);
        let dst = aug.view_mut().subview_mut(j * m, m);
        gpu.try_launch(LaunchConfig::for_elems(m, 128), &CopyK { src, dst, n: m })?;
    }
    let ident = crate::dense::DenseMatrix::<T>::identity(m);
    let ibuf = gpu.try_htod(ident.as_slice())?;
    for j in 0..m {
        let src = ibuf.view().subview(j * m, m);
        let dst = aug.view_mut().subview_mut((m + j) * m, m);
        gpu.try_launch(LaunchConfig::for_elems(m, 128), &CopyK { src, dst, n: m })?;
    }

    // Eliminate column k around pivot row k, for every k.
    for k in 0..m {
        let alpha = aug.col_view(k);
        // Pivot check: one scalar over PCIe (the honest cost of device-side
        // control flow in the pre-dynamic-parallelism era).
        let piv = gpu.try_dtoh_range(aug.buffer(), k * m + k, 1)?[0];
        if !(piv.abs() > pivot_tol) || !piv.is_finite() {
            return Ok(None);
        }
        eliminate(gpu, &mut aug, alpha, k)?;
    }

    // Extract the right half.
    let mut inv = DeviceMatrix::<T>::zeros(gpu, m, m, Layout::ColMajor)?;
    for j in 0..m {
        let src = aug.col_view(m + j);
        let dst = inv.view_mut().subview_mut(j * m, m);
        gpu.try_launch(LaunchConfig::for_elems(m, 128), &CopyK { src, dst, n: m })?;
    }
    Ok(Some(inv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas;
    use crate::dense::DenseMatrix;
    use gpu_sim::DeviceSpec;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::gtx280())
    }

    fn well_conditioned(m: usize) -> DenseMatrix<f64> {
        let mut a = DenseMatrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                let v = (((i * 31 + j * 17 + 3) % 19) as f64 - 9.0) / 19.0;
                a.set(i, j, v + if i == j { 4.0 } else { 0.0 });
            }
        }
        a
    }

    #[test]
    fn device_inverse_matches_host_inverse() {
        let g = gpu();
        let host = well_conditioned(24);
        let dev = DeviceMatrix::upload(&g, &host, Layout::ColMajor).unwrap();
        let inv = invert_gauss_jordan(&g, &dev, 1e-12)
            .unwrap()
            .expect("invertible");
        let inv_host = inv.download(&g).unwrap();
        let mut prod = DenseMatrix::zeros(24, 24);
        blas::gemm(1.0, &inv_host, &host, 0.0, &mut prod);
        for i in 0..24 {
            for j in 0..24 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (prod.get(i, j) - expect).abs() < 1e-9,
                    "({i},{j}) = {}",
                    prod.get(i, j)
                );
            }
        }
    }

    #[test]
    fn singularish_matrix_is_rejected() {
        let g = gpu();
        let mut host = well_conditioned(6);
        // Make row 3 a copy of row 2 → singular, caught at some pivot.
        for j in 0..6 {
            host.set(3, j, host.get(2, j));
        }
        let dev = DeviceMatrix::upload(&g, &host, Layout::ColMajor).unwrap();
        assert!(invert_gauss_jordan(&g, &dev, 1e-9).unwrap().is_none());
    }

    #[test]
    fn zero_leading_pivot_without_pivoting_is_reported_not_miscomputed() {
        // A perfectly invertible matrix that non-pivoting elimination cannot
        // handle: zero in the (0,0) position.
        let g = gpu();
        let host = DenseMatrix::from_rows(&[vec![0.0f64, 1.0], vec![1.0, 0.0]]);
        let dev = DeviceMatrix::upload(&g, &host, Layout::ColMajor).unwrap();
        assert!(invert_gauss_jordan(&g, &dev, 1e-12).unwrap().is_none());
    }

    #[test]
    fn device_inverse_charges_launches_and_scalar_reads() {
        let g = gpu();
        let m = 16;
        let dev = DeviceMatrix::upload(&g, &well_conditioned(m), Layout::ColMajor).unwrap();
        g.reset_counters();
        let _ = invert_gauss_jordan(&g, &dev, 1e-12).unwrap().unwrap();
        let c = g.counters();
        // m pivot reads over PCIe.
        assert_eq!(c.d2h_count as usize, m);
        // 2m copies in, m eliminations (3 launches each), m copies out.
        assert_eq!(c.kernels_launched as usize, 2 * m + 3 * m + m);
    }
}
