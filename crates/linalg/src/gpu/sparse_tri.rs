//! Device-resident sparse triangular solves over LU factors — the GPU leg
//! of `BasisRepresentation::SparseLU`.
//!
//! The factors come from [`crate::lu::SparseLu`] (host Markowitz
//! factorization); [`DeviceLu::upload`] moves the CSC arrays into device
//! memory and precomputes the *level schedule depth* of each factor — the
//! length of the longest dependency chain in the triangular solve DAG. The
//! kernels here execute functionally on a single host iteration running the
//! exact arithmetic sequence of the host solves (so CPU and GPU backends
//! stay bitwise interchangeable), while their cost descriptors model the
//! level-scheduled CUDA kernel of the era: one pass per level, only the
//! rows of that level active, scattered gathers into the right-hand side.
//! Average modeled parallelism is therefore `m / depth` — a genuinely
//! sparse, shallow factor keeps the device busy; a near-dense triangle
//! degenerates toward the serial solve, and the cost model says so.

use gpu_sim::{
    AccessPattern, DView, DViewMut, DeviceBuffer, DeviceError, Gpu, Kernel, KernelCost,
    LaunchConfig, ThreadCtx,
};

use crate::lu::SparseLu;
use crate::scalar::Scalar;
use crate::sparse::CscMatrix;

/// LU factors of a basis resident in simulated device memory, plus the
/// host-side level metadata the cost model needs.
pub struct DeviceLu<T: Scalar> {
    l_col_ptr: DeviceBuffer<u32>,
    l_row_idx: DeviceBuffer<u32>,
    l_values: DeviceBuffer<T>,
    u_col_ptr: DeviceBuffer<u32>,
    u_row_idx: DeviceBuffer<u32>,
    u_values: DeviceBuffer<T>,
    u_diag: DeviceBuffer<T>,
    row_perm: DeviceBuffer<u32>,
    col_perm: DeviceBuffer<u32>,
    m: usize,
    nnz_l: usize,
    nnz_u: usize,
    /// Longest dependency chain through L-forward then U-backward (the
    /// level count a level-scheduled solver would launch).
    depth: usize,
}

/// Depth of the level schedule for a forward solve with `tri` (columns
/// processed in ascending order, each column scattering to rows below).
/// The backward/transposed solves share the same DAG, so one depth per
/// factor covers every solve direction.
fn level_depth<T: Scalar>(tri: &CscMatrix<T>, forward: bool) -> usize {
    let m = tri.cols();
    if m == 0 {
        return 0;
    }
    let mut level = vec![1u32; m];
    let mut max = 1u32;
    if forward {
        for k in 0..m {
            for (i, _) in tri.col(k) {
                level[i] = level[i].max(level[k] + 1);
                max = max.max(level[i]);
            }
        }
    } else {
        for j in (0..m).rev() {
            for (k, _) in tri.col(j) {
                level[k] = level[k].max(level[j] + 1);
                max = max.max(level[k]);
            }
        }
    }
    max as usize
}

impl<T: Scalar> DeviceLu<T> {
    /// Upload host factors (every array transfer is charged H2D).
    pub fn upload(gpu: &Gpu, lu: &SparseLu<T>) -> Result<Self, DeviceError> {
        let l = lu.l();
        let u = lu.u();
        Ok(DeviceLu {
            l_col_ptr: gpu.try_htod(&l.col_ptr)?,
            l_row_idx: gpu.try_htod(&l.row_idx)?,
            l_values: gpu.try_htod(&l.values)?,
            u_col_ptr: gpu.try_htod(&u.col_ptr)?,
            u_row_idx: gpu.try_htod(&u.row_idx)?,
            u_values: gpu.try_htod(&u.values)?,
            u_diag: gpu.try_htod(lu.u_diag())?,
            row_perm: gpu.try_htod(lu.row_perm())?,
            col_perm: gpu.try_htod(lu.col_perm())?,
            m: lu.m(),
            nnz_l: l.nnz(),
            nnz_u: u.nnz(),
            depth: level_depth(l, true) + level_depth(u, false),
        })
    }

    /// Dimension.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Level-schedule depth (L-forward + U-backward chains).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// FTRAN on the device: `x ← B₀⁻¹ x`. `scratch` must be length m.
    pub fn ftran(
        &self,
        gpu: &Gpu,
        x: DViewMut<T>,
        scratch: DViewMut<T>,
    ) -> Result<(), DeviceError> {
        assert_eq!(x.len(), self.m, "ftran: x length mismatch");
        assert_eq!(scratch.len(), self.m, "ftran: scratch length mismatch");
        gpu.try_launch(
            LaunchConfig::for_elems(self.m.max(1), 128),
            &LuFtranK {
                l_col_ptr: self.l_col_ptr.view(),
                l_row_idx: self.l_row_idx.view(),
                l_values: self.l_values.view(),
                u_col_ptr: self.u_col_ptr.view(),
                u_row_idx: self.u_row_idx.view(),
                u_values: self.u_values.view(),
                u_diag: self.u_diag.view(),
                row_perm: self.row_perm.view(),
                col_perm: self.col_perm.view(),
                x,
                scratch,
                m: self.m,
                nnz_l: self.nnz_l,
                nnz_u: self.nnz_u,
                depth: self.depth,
            },
        )?;
        Ok(())
    }

    /// BTRAN on the device: `y ← B₀⁻ᵀ y`. `scratch` must be length m.
    pub fn btran(
        &self,
        gpu: &Gpu,
        y: DViewMut<T>,
        scratch: DViewMut<T>,
    ) -> Result<(), DeviceError> {
        assert_eq!(y.len(), self.m, "btran: y length mismatch");
        assert_eq!(scratch.len(), self.m, "btran: scratch length mismatch");
        gpu.try_launch(
            LaunchConfig::for_elems(self.m.max(1), 128),
            &LuBtranK {
                l_col_ptr: self.l_col_ptr.view(),
                l_row_idx: self.l_row_idx.view(),
                l_values: self.l_values.view(),
                u_col_ptr: self.u_col_ptr.view(),
                u_row_idx: self.u_row_idx.view(),
                u_values: self.u_values.view(),
                u_diag: self.u_diag.view(),
                row_perm: self.row_perm.view(),
                col_perm: self.col_perm.view(),
                y,
                scratch,
                m: self.m,
                nnz_l: self.nnz_l,
                nnz_u: self.nnz_u,
                depth: self.depth,
            },
        )?;
        Ok(())
    }
}

/// Shared cost descriptor for the level-scheduled triangular-solve pair.
/// Modeled geometry: `depth` dependent passes, each launching the rows of
/// one level — index/value gathers are scattered by nature (the row lists
/// of a level are arbitrary), the right-hand side is read-modify-scattered,
/// and average occupancy is `m / depth` threads.
fn tri_solve_cost<T: Scalar>(m: usize, nnz_l: usize, nnz_u: usize, depth: usize) -> KernelCost {
    let m64 = m as u64;
    let nnz = (nnz_l + nnz_u) as u64;
    let avg_parallelism = (m64 / depth.max(1) as u64).max(1);
    KernelCost::new()
        .flops_total(2 * nnz + 4 * m64)
        .fp64(T::IS_F64)
        // Factor values + row indices, gathered per level.
        .read(AccessPattern::scattered::<T>(nnz))
        .read(AccessPattern::scattered::<u32>(nnz))
        // Column pointers for both factors, the diagonal, and the two
        // permutation vectors stream coalesced.
        .read(AccessPattern::coalesced::<u32>(2 * (m64 + 1)))
        .read(AccessPattern::coalesced::<T>(m64))
        .read(AccessPattern::coalesced::<u32>(2 * m64))
        // The rhs is gathered and scattered as columns eliminate into it.
        .read(AccessPattern::scattered::<T>(nnz + 2 * m64))
        .write(AccessPattern::scattered::<T>(nnz + 2 * m64))
        // Ragged level populations diverge within warps.
        .divergence(1.5)
        .int_ops_total(2 * nnz + 2 * m64)
        .active_threads_raw(avg_parallelism)
}

/// FTRAN through device-resident LU factors.
///
/// Functional geometry: one host iteration replaying the host solve's exact
/// arithmetic order (bitwise parity with
/// [`SparseLu::ftran_in_place`]). Modeled geometry: see
/// [`tri_solve_cost`].
pub struct LuFtranK<T: Scalar> {
    pub l_col_ptr: DView<u32>,
    pub l_row_idx: DView<u32>,
    pub l_values: DView<T>,
    pub u_col_ptr: DView<u32>,
    pub u_row_idx: DView<u32>,
    pub u_values: DView<T>,
    pub u_diag: DView<T>,
    pub row_perm: DView<u32>,
    pub col_perm: DView<u32>,
    pub x: DViewMut<T>,
    pub scratch: DViewMut<T>,
    pub m: usize,
    pub nnz_l: usize,
    pub nnz_u: usize,
    pub depth: usize,
}

impl<T: Scalar> Kernel for LuFtranK<T> {
    fn name(&self) -> &'static str {
        "lu_ftran"
    }
    fn run(&self, t: &ThreadCtx) {
        if t.global_id() != 0 {
            return;
        }
        let m = self.m;
        let x = self.x.as_mut_slice();
        let z = self.scratch.as_mut_slice();
        let rp = self.row_perm.as_slice();
        let cp = self.col_perm.as_slice();
        for k in 0..m {
            z[k] = x[rp[k] as usize];
        }
        let lp = self.l_col_ptr.as_slice();
        let li = self.l_row_idx.as_slice();
        let lv = self.l_values.as_slice();
        for k in 0..m {
            let zk = z[k];
            if zk != T::ZERO {
                for e in lp[k] as usize..lp[k + 1] as usize {
                    let i = li[e] as usize;
                    z[i] -= lv[e] * zk;
                }
            }
        }
        let up = self.u_col_ptr.as_slice();
        let ui = self.u_row_idx.as_slice();
        let uv = self.u_values.as_slice();
        let ud = self.u_diag.as_slice();
        for j in (0..m).rev() {
            let yj = z[j] / ud[j];
            z[j] = yj;
            if yj != T::ZERO {
                for e in up[j] as usize..up[j + 1] as usize {
                    let k = ui[e] as usize;
                    z[k] -= uv[e] * yj;
                }
            }
        }
        for k in 0..m {
            x[cp[k] as usize] = z[k];
        }
    }
    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        tri_solve_cost::<T>(self.m, self.nnz_l, self.nnz_u, self.depth)
    }
}

/// BTRAN through device-resident LU factors (transposed solves, same
/// modeled geometry as [`LuFtranK`]).
pub struct LuBtranK<T: Scalar> {
    pub l_col_ptr: DView<u32>,
    pub l_row_idx: DView<u32>,
    pub l_values: DView<T>,
    pub u_col_ptr: DView<u32>,
    pub u_row_idx: DView<u32>,
    pub u_values: DView<T>,
    pub u_diag: DView<T>,
    pub row_perm: DView<u32>,
    pub col_perm: DView<u32>,
    pub y: DViewMut<T>,
    pub scratch: DViewMut<T>,
    pub m: usize,
    pub nnz_l: usize,
    pub nnz_u: usize,
    pub depth: usize,
}

impl<T: Scalar> Kernel for LuBtranK<T> {
    fn name(&self) -> &'static str {
        "lu_btran"
    }
    fn run(&self, t: &ThreadCtx) {
        if t.global_id() != 0 {
            return;
        }
        let m = self.m;
        let y = self.y.as_mut_slice();
        let z = self.scratch.as_mut_slice();
        let rp = self.row_perm.as_slice();
        let cp = self.col_perm.as_slice();
        for k in 0..m {
            z[k] = y[cp[k] as usize];
        }
        let up = self.u_col_ptr.as_slice();
        let ui = self.u_row_idx.as_slice();
        let uv = self.u_values.as_slice();
        let ud = self.u_diag.as_slice();
        for j in 0..m {
            let mut acc = z[j];
            for e in up[j] as usize..up[j + 1] as usize {
                acc -= uv[e] * z[ui[e] as usize];
            }
            z[j] = acc / ud[j];
        }
        let lp = self.l_col_ptr.as_slice();
        let li = self.l_row_idx.as_slice();
        let lv = self.l_values.as_slice();
        for k in (0..m).rev() {
            let mut acc = z[k];
            for e in lp[k] as usize..lp[k + 1] as usize {
                acc -= lv[e] * z[li[e] as usize];
            }
            z[k] = acc;
        }
        for k in 0..m {
            y[rp[k] as usize] = z[k];
        }
    }
    fn cost(&self, _cfg: &LaunchConfig) -> KernelCost {
        tri_solve_cost::<T>(self.m, self.nnz_l, self.nnz_u, self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    fn random_basis(m: usize, extra: usize, seed: &mut u64) -> Vec<Vec<(usize, f64)>> {
        let mut cols: Vec<Vec<(usize, f64)>> = (0..m).map(|j| vec![(j, 2.0 + lcg(seed))]).collect();
        for _ in 0..extra {
            let i = (lcg(seed).abs() * m as f64) as usize % m;
            let j = (lcg(seed).abs() * m as f64) as usize % m;
            if i != j && !cols[j].iter().any(|&(r, _)| r == i) {
                cols[j].push((i, 0.5 * lcg(seed)));
            }
        }
        cols
    }

    #[test]
    fn device_solves_match_host_bitwise() {
        let mut seed = 11u64;
        for (m, extra) in [(5usize, 8usize), (24, 60), (40, 120)] {
            let cols = random_basis(m, extra, &mut seed);
            let lu = SparseLu::<f64>::factorize(m, &cols, 0.1).expect("nonsingular");
            let gpu = Gpu::new(DeviceSpec::gtx280());
            let dev = DeviceLu::upload(&gpu, &lu).unwrap();
            let b: Vec<f64> = (0..m).map(|i| 0.125 + i as f64 * 0.75).collect();

            let mut host_x = b.clone();
            let mut host_scratch = vec![0.0; m];
            lu.ftran_in_place(&mut host_x, &mut host_scratch);
            let mut x_dev = gpu.try_htod(&b).unwrap();
            let mut scratch = gpu.try_alloc(m, 0.0f64).unwrap();
            dev.ftran(&gpu, x_dev.view_mut(), scratch.view_mut())
                .unwrap();
            assert_eq!(gpu.try_dtoh(&x_dev).unwrap(), host_x, "ftran (m={m})");

            let mut host_y = b.clone();
            lu.btran_in_place(&mut host_y, &mut host_scratch);
            let mut y_dev = gpu.try_htod(&b).unwrap();
            dev.btran(&gpu, y_dev.view_mut(), scratch.view_mut())
                .unwrap();
            assert_eq!(gpu.try_dtoh(&y_dev).unwrap(), host_y, "btran (m={m})");
        }
    }

    #[test]
    fn identity_factors_have_unit_depth() {
        let m = 9;
        let cols: Vec<Vec<(usize, f64)>> = (0..m).map(|j| vec![(j, 1.0)]).collect();
        let lu = SparseLu::<f64>::factorize(m, &cols, 0.1).unwrap();
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let dev = DeviceLu::upload(&gpu, &lu).unwrap();
        // Empty strictly-triangular factors: one level each direction.
        assert_eq!(dev.depth(), 2);
        // A dense-ish chain deepens the schedule: bidiagonal lower factor.
        let mut chain: Vec<Vec<(usize, f64)>> = (0..m).map(|j| vec![(j, 1.0)]).collect();
        for (j, col) in chain.iter_mut().enumerate().take(m - 1) {
            col.push((j + 1, 0.5));
        }
        let lu2 = SparseLu::<f64>::factorize(m, &chain, 0.1).unwrap();
        let dev2 = DeviceLu::upload(&gpu, &lu2).unwrap();
        assert!(
            dev2.depth() >= m,
            "chain basis must serialize: {}",
            dev2.depth()
        );
    }

    #[test]
    fn cost_scales_with_depth_not_just_nnz() {
        // Same nnz, different depth → the deeper solve models slower
        // (occupancy collapses), which is the whole point of the level
        // model.
        let shallow = tri_solve_cost::<f64>(1024, 2048, 2048, 4);
        let deep = tri_solve_cost::<f64>(1024, 2048, 2048, 512);
        assert_eq!(shallow.flops, deep.flops);
        assert!(shallow.active_threads > deep.active_threads);
    }
}
