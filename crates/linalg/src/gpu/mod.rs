//! "simublas" — the CUBLAS-role BLAS subset as [`gpu_sim`] kernels.
//!
//! Layout matters here the way it mattered in 2009: [`DeviceMatrix`] carries
//! its storage [`Layout`], and every kernel's cost descriptor derives its
//! coalescing pattern from that layout. The paper stores matrices
//! column-major so the one-thread-per-row `gemv` streams coalesced;
//! experiment F4 flips the layout and measures the damage.
//!
//! ## Functional vs. modeled geometry
//!
//! Kernels whose modeled CUDA geometry is one-thread-per-element (the basis
//! pivot update, `ger`) execute functionally with one host iteration per
//! *column* running a tight slice loop — same results, ~m× fewer closure
//! dispatches — and declare the modeled thread count via
//! `KernelCost::active_threads_raw`. Reductions mirror 2009 CUDA style:
//! `log`-depth passes of block-tree kernels, finishing with a tiny
//! device→host transfer (which is charged, because that per-iteration PCIe
//! latency is part of the paper's story).

mod algo;
mod batch_kernels;
mod blas;
mod first_order;
mod gemm;
mod invert;
mod kernels;
mod mat;
mod sparse_tri;

pub use algo::{
    argmin, argmin_into, reduce, reduce_into, reduce_u32_min, reduce_u32_min_into, ReduceOp,
};
pub use batch_kernels::{
    BatchBookK, BatchBtranK, BatchFtranK, BatchObjK, BatchPivotK, BatchPriceK, BatchRatioK,
    BatchSelectK, LaneGatherK, LaneScatterK, SelectRule, CTL_ACTIVE, CTL_BLAND,
};
pub use blas::{
    axpy, copy, copy_on, dot, eliminate, eliminate_on, fill, gemv_n, gemv_n_on, gemv_t,
    gemv_t_cols, gemv_t_cols_on, gemv_t_on, ger, pivot_update, pivot_update_on, scal,
    GemvTStrategy,
};
pub use first_order::{pdhg_dual_on, pdhg_primal_on, PdhgDualK, PdhgPrimalK};
pub use gemm::{gemm, GEMM_TILE};
pub use invert::invert_gauss_jordan;
pub use kernels::{CopyK, EtaK, RowExtractK};
pub use mat::{DeviceMatrix, Layout};
pub use sparse_tri::{DeviceLu, LuBtranK, LuFtranK};
