//! Modeled single-core CPU baseline.
//!
//! The paper's comparison is GPU versus *one core* of a 2008/2009 desktop
//! CPU running a tuned serial BLAS (ATLAS). The reproduction cannot wall-clock
//! that machine, so CPU time — like GPU time — is charged from a roofline
//! model: `max(flops / F, bytes / B) + overhead`, with constants calibrated
//! to a Core 2 quad-era core (see `EXPERIMENTS.md` for calibration notes).
//! The same model is reused with different constants for sensitivity checks.

use gpu_sim::SimTime;
use parking_lot_free::Cell64;

/// A tiny `Cell<f64>`-based accumulator so [`CpuClock`] stays `Send`-free and
/// dependency-free (module-private shim; `parking_lot` is overkill here).
mod parking_lot_free {
    use std::cell::Cell;

    /// Interior-mutable f64 accumulator.
    #[derive(Debug, Default)]
    pub struct Cell64(Cell<f64>);

    impl Cell64 {
        /// Add to the accumulator.
        pub fn add(&self, v: f64) {
            self.0.set(self.0.get() + v);
        }
        /// Read the accumulator.
        pub fn get(&self) -> f64 {
            self.0.get()
        }
        /// Zero the accumulator.
        pub fn reset(&self) {
            self.0.set(0.0);
        }
    }
}

/// Roofline constants for a modeled serial CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Model name for reports.
    pub name: &'static str,
    /// Sustained single-core FLOP/s for streaming f32 kernels.
    pub flops_per_sec: f64,
    /// Sustained memory bandwidth from one core, bytes/s.
    pub mem_bandwidth: f64,
    /// Fixed overhead per BLAS call, ns (call + loop setup).
    pub call_overhead_ns: f64,
    /// Multiplier on FLOP cost for double precision (SSE2 does half the
    /// lanes of single precision).
    pub fp64_flop_factor: f64,
}

impl CpuModel {
    /// Paper-era (early-2009) desktop single core with tuned serial BLAS —
    /// a Core i7-920-class machine: ~5 GFLOP/s sustained f32 SIMD, ~10 GB/s
    /// streaming from one core. Calibration notes in `EXPERIMENTS.md`.
    pub fn core2_era() -> Self {
        CpuModel {
            name: "2009 desktop single core (ATLAS-like)",
            flops_per_sec: 5.0e9,
            mem_bandwidth: 10.0e9,
            call_overhead_ns: 60.0,
            fp64_flop_factor: 2.0,
        }
    }

    /// A pessimistic plain-C baseline (no SIMD), for sensitivity analysis.
    pub fn scalar_c() -> Self {
        CpuModel {
            name: "Core2-era single core (scalar C)",
            flops_per_sec: 1.2e9,
            mem_bandwidth: 5.0e9,
            call_overhead_ns: 60.0,
            fp64_flop_factor: 1.0,
        }
    }

    /// A modern-ish core, for sensitivity analysis (2014-era, one thread).
    pub fn modern() -> Self {
        CpuModel {
            name: "2014-era single core",
            flops_per_sec: 16.0e9,
            mem_bandwidth: 12.0e9,
            call_overhead_ns: 40.0,
            fp64_flop_factor: 2.0,
        }
    }

    /// Modeled time for an operation moving `bytes` through memory and
    /// retiring `flops` floating-point operations.
    pub fn op_time(&self, flops: u64, bytes: u64, fp64: bool) -> SimTime {
        let f = if fp64 { self.fp64_flop_factor } else { 1.0 };
        let compute = flops as f64 * f / self.flops_per_sec;
        let memory = bytes as f64 / self.mem_bandwidth;
        SimTime::from_ns(self.call_overhead_ns) + SimTime::from_secs(compute.max(memory))
    }
}

/// Accumulates modeled CPU time, split by caller-chosen phase labels.
#[derive(Debug, Default)]
pub struct CpuClock {
    total_ns: Cell64,
}

impl CpuClock {
    /// New zeroed clock.
    pub fn new() -> Self {
        CpuClock::default()
    }

    /// Charge a modeled duration.
    pub fn charge(&self, t: SimTime) {
        self.total_ns.add(t.as_nanos());
    }

    /// Total modeled time so far.
    pub fn elapsed(&self) -> SimTime {
        SimTime::from_ns(self.total_ns.get())
    }

    /// Zero the clock.
    pub fn reset(&self) {
        self.total_ns.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_bound_gemv() {
        // f32 gemv 1000×1000: 2e6 flops, 4e6 bytes — the memory term
        // dominates (0.4 ms at 10 GB/s vs 0.4 ms... flops: 2e6/5e9 = 0.4 ms
        // too; use a clearly bandwidth-bound op instead: 0 flops).
        let m = CpuModel::core2_era();
        let t = m.op_time(0, 4_000_000, false);
        let mem = 4e6 / 10.0e9;
        assert!((t.as_secs_f64() - mem).abs() / mem < 1e-3);
    }

    #[test]
    fn fp64_doubles_compute_cost() {
        let m = CpuModel::core2_era();
        // Pure-compute op (no memory traffic).
        let t32 = m.op_time(1 << 30, 0, false);
        let t64 = m.op_time(1 << 30, 0, true);
        let overhead = 60.0;
        let r = (t64.as_nanos() - overhead) / (t32.as_nanos() - overhead);
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let c = CpuClock::new();
        c.charge(SimTime::from_us(2.0));
        c.charge(SimTime::from_us(3.0));
        assert!((c.elapsed().as_micros() - 5.0).abs() < 1e-12);
        c.reset();
        assert_eq!(c.elapsed().as_nanos(), 0.0);
    }

    #[test]
    fn tiny_ops_pay_call_overhead() {
        let m = CpuModel::core2_era();
        let t = m.op_time(2, 8, false);
        assert!(t.as_nanos() >= 60.0);
    }
}
