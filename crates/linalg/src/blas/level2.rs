//! Level-2 (matrix-vector) routines over column-major [`DenseMatrix`].

use crate::dense::DenseMatrix;
use crate::scalar::Scalar;

/// `y ← αAx + βy` (no transpose).
///
/// Walks the matrix column-by-column so the inner loop is contiguous — the
/// cache-friendly order for column-major storage, mirroring what a tuned
/// serial sgemv does.
pub fn gemv_n<T: Scalar>(alpha: T, a: &DenseMatrix<T>, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(a.cols(), x.len(), "gemv_n: x length mismatch");
    assert_eq!(a.rows(), y.len(), "gemv_n: y length mismatch");
    for v in y.iter_mut() {
        *v *= beta;
    }
    for (j, &xj) in x.iter().enumerate() {
        let s = alpha * xj;
        if s == T::ZERO {
            continue;
        }
        for (yi, &aij) in y.iter_mut().zip(a.col(j)) {
            *yi = s.mul_add(aij, *yi);
        }
    }
}

/// `y ← αAᵀx + βy`.
pub fn gemv_t<T: Scalar>(alpha: T, a: &DenseMatrix<T>, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(a.rows(), x.len(), "gemv_t: x length mismatch");
    assert_eq!(a.cols(), y.len(), "gemv_t: y length mismatch");
    for (j, yj) in y.iter_mut().enumerate() {
        let mut acc = T::ZERO;
        for (&aij, &xi) in a.col(j).iter().zip(x) {
            acc = aij.mul_add(xi, acc);
        }
        *yj = alpha * acc + beta * *yj;
    }
}

/// Rank-1 update `A ← A + αxyᵀ`.
pub fn ger<T: Scalar>(alpha: T, x: &[T], y: &[T], a: &mut DenseMatrix<T>) {
    assert_eq!(a.rows(), x.len(), "ger: x length mismatch");
    assert_eq!(a.cols(), y.len(), "ger: y length mismatch");
    for (j, &yj) in y.iter().enumerate() {
        let s = alpha * yj;
        if s == T::ZERO {
            continue;
        }
        for (aij, &xi) in a.col_mut(j).iter_mut().zip(x) {
            *aij = s.mul_add(xi, *aij);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat() -> DenseMatrix<f64> {
        DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]])
    }

    #[test]
    fn gemv_n_basic() {
        let a = mat();
        let mut y = vec![1.0, 1.0, 1.0];
        gemv_n(1.0, &a, &[1.0, 2.0], 0.0, &mut y);
        assert_eq!(y, vec![5.0, 11.0, 17.0]);
    }

    #[test]
    fn gemv_n_alpha_beta() {
        let a = mat();
        let mut y = vec![10.0, 20.0, 30.0];
        gemv_n(2.0, &a, &[1.0, 0.0], 0.5, &mut y);
        assert_eq!(y, vec![5.0 + 2.0, 10.0 + 6.0, 15.0 + 10.0]);
    }

    #[test]
    fn gemv_t_basic() {
        let a = mat();
        let mut y = vec![0.0, 0.0];
        gemv_t(1.0, &a, &[1.0, 1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![9.0, 12.0]);
    }

    #[test]
    fn gemv_t_matches_transpose_gemv_n() {
        let a = mat();
        let at = a.transpose();
        let x = vec![1.0, -2.0, 0.5];
        let mut y1 = vec![0.0, 0.0];
        let mut y2 = vec![0.0, 0.0];
        gemv_t(1.0, &a, &x, 0.0, &mut y1);
        gemv_n(1.0, &at, &x, 0.0, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn ger_rank1() {
        let mut a = DenseMatrix::<f64>::zeros(2, 2);
        ger(2.0, &[1.0, 2.0], &[3.0, 4.0], &mut a);
        assert_eq!(a.get(0, 0), 6.0);
        assert_eq!(a.get(1, 1), 16.0);
    }
}
