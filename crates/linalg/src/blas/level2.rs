//! Level-2 (matrix-vector) routines over column-major [`DenseMatrix`].

use crate::dense::DenseMatrix;
use crate::scalar::Scalar;

/// β-scale of one output element. With `β = 0` the output is *overwritten*,
/// so a non-finite previous value must not leak through as `0 · NaN = NaN` —
/// that would keep a poisoned vector unhealable forever (the PR-8 mega-batch
/// zeroing bug, now fixed here for the scalar level-2 path too). Finite
/// values still go through the multiply so `±0` signs are bitwise preserved.
#[inline]
pub(crate) fn beta_scale<T: Scalar>(prev: T, beta: T) -> T {
    if beta == T::ZERO {
        if prev.is_finite() {
            prev * beta
        } else {
            T::ZERO
        }
    } else {
        prev * beta
    }
}

/// `y ← αAx + βy` (no transpose).
///
/// Walks the matrix column-by-column so the inner loop is contiguous — the
/// cache-friendly order for column-major storage, mirroring what a tuned
/// serial sgemv does.
pub fn gemv_n<T: Scalar>(alpha: T, a: &DenseMatrix<T>, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(a.cols(), x.len(), "gemv_n: x length mismatch");
    assert_eq!(a.rows(), y.len(), "gemv_n: y length mismatch");
    for v in y.iter_mut() {
        *v = beta_scale(*v, beta);
    }
    for (j, &xj) in x.iter().enumerate() {
        let s = alpha * xj;
        if s == T::ZERO {
            continue;
        }
        for (yi, &aij) in y.iter_mut().zip(a.col(j)) {
            *yi = s.mul_add(aij, *yi);
        }
    }
}

/// `y ← αAᵀx + βy`.
pub fn gemv_t<T: Scalar>(alpha: T, a: &DenseMatrix<T>, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(a.rows(), x.len(), "gemv_t: x length mismatch");
    assert_eq!(a.cols(), y.len(), "gemv_t: y length mismatch");
    for (j, yj) in y.iter_mut().enumerate() {
        let mut acc = T::ZERO;
        for (&aij, &xi) in a.col(j).iter().zip(x) {
            acc = aij.mul_add(xi, acc);
        }
        *yj = alpha * acc + beta_scale(*yj, beta);
    }
}

/// Rank-1 update `A ← A + αxyᵀ`.
pub fn ger<T: Scalar>(alpha: T, x: &[T], y: &[T], a: &mut DenseMatrix<T>) {
    assert_eq!(a.rows(), x.len(), "ger: x length mismatch");
    assert_eq!(a.cols(), y.len(), "ger: y length mismatch");
    for (j, &yj) in y.iter().enumerate() {
        let s = alpha * yj;
        if s == T::ZERO {
            continue;
        }
        for (aij, &xi) in a.col_mut(j).iter_mut().zip(x) {
            *aij = s.mul_add(xi, *aij);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat() -> DenseMatrix<f64> {
        DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]])
    }

    #[test]
    fn gemv_n_basic() {
        let a = mat();
        let mut y = vec![1.0, 1.0, 1.0];
        gemv_n(1.0, &a, &[1.0, 2.0], 0.0, &mut y);
        assert_eq!(y, vec![5.0, 11.0, 17.0]);
    }

    #[test]
    fn gemv_n_alpha_beta() {
        let a = mat();
        let mut y = vec![10.0, 20.0, 30.0];
        gemv_n(2.0, &a, &[1.0, 0.0], 0.5, &mut y);
        assert_eq!(y, vec![5.0 + 2.0, 10.0 + 6.0, 15.0 + 10.0]);
    }

    #[test]
    fn gemv_t_basic() {
        let a = mat();
        let mut y = vec![0.0, 0.0];
        gemv_t(1.0, &a, &[1.0, 1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![9.0, 12.0]);
    }

    #[test]
    fn gemv_t_matches_transpose_gemv_n() {
        let a = mat();
        let at = a.transpose();
        let x = vec![1.0, -2.0, 0.5];
        let mut y1 = vec![0.0, 0.0];
        let mut y2 = vec![0.0, 0.0];
        gemv_t(1.0, &a, &x, 0.0, &mut y1);
        gemv_n(1.0, &at, &x, 0.0, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn gemv_n_beta_zero_heals_poisoned_y() {
        // β = 0 means "overwrite y": a NaN left in y by a faulted kernel
        // must not survive the zeroing pass as 0 · NaN = NaN. Pre-fix this
        // produced [NaN, NaN, NaN] and the poison could never be healed.
        let a = mat();
        let mut y = vec![f64::NAN, f64::INFINITY, -0.0];
        gemv_n(1.0, &a, &[1.0, 2.0], 0.0, &mut y);
        assert_eq!(y, vec![5.0, 11.0, 17.0]);
        // The x = 0 fast path must not skip the healing either.
        let mut y = vec![f64::NAN; 3];
        gemv_n(1.0, &a, &[0.0, 0.0], 0.0, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn gemv_t_beta_zero_heals_poisoned_y() {
        let a = mat();
        let mut y = vec![f64::NAN, f64::NEG_INFINITY];
        gemv_t(1.0, &a, &[1.0, 1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![9.0, 12.0]);
    }

    #[test]
    fn beta_zero_keeps_x_poison_visible() {
        // Healing is only for the *output* operand: NaN riding in through
        // x is real data corruption and must propagate, fast paths or not.
        let a = mat();
        let mut y = vec![0.0; 3];
        gemv_n(1.0, &a, &[f64::NAN, 0.0], 0.0, &mut y);
        assert!(y.iter().all(|v| v.is_nan()));
        let mut y = vec![0.0; 2];
        gemv_t(1.0, &a, &[f64::NAN, 0.0, 0.0], 0.0, &mut y);
        assert!(y.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn beta_nonzero_still_propagates_y() {
        // With β ≠ 0 the previous y is a real input — poison must survive.
        let a = mat();
        let mut y = vec![f64::NAN, 1.0, 1.0];
        gemv_n(1.0, &a, &[1.0, 2.0], 0.5, &mut y);
        assert!(y[0].is_nan());
        assert_eq!(y[1], 11.5);
    }

    #[test]
    fn beta_zero_preserves_signed_zero() {
        // Finite values still take the multiply path so −0.0 · 0.0 = −0.0
        // keeps its bit pattern through an α = 0 no-op gemv.
        let a = mat();
        let mut y = vec![-0.0f64, 0.0, -0.0];
        gemv_n(0.0, &a, &[0.0, 0.0], 0.0, &mut y);
        assert_eq!(y[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(y[1].to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn ger_rank1() {
        let mut a = DenseMatrix::<f64>::zeros(2, 2);
        ger(2.0, &[1.0, 2.0], &[3.0, 4.0], &mut a);
        assert_eq!(a.get(0, 0), 6.0);
        assert_eq!(a.get(1, 1), 16.0);
    }
}
