//! Serial CPU BLAS subset — the reproduction's stand-in for the ATLAS
//! routines behind the paper's CPU baseline.
//!
//! Routines are deliberately straightforward loops: the baseline the paper
//! compares against is a single CPU core, and the *modeled* baseline time
//! comes from [`crate::cpu_model`], not from wall-clocking these loops.

mod inv;
mod level1;
mod level2;
mod level3;

pub use inv::{gauss_jordan_invert, lu_solve};
pub use level1::{asum, axpy, copy, dot, iamax, nrm2, scal};
pub(crate) use level2::beta_scale;
pub use level2::{gemv_n, gemv_t, ger};
pub use level3::gemm;
