//! Level-1 (vector-vector) routines.

use crate::scalar::Scalar;

/// Dot product `xᵀy`.
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = T::ZERO;
    for (&a, &b) in x.iter().zip(y) {
        acc = a.mul_add(b, acc);
    }
    acc
}

/// `y ← αx + y`.
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (&a, b) in x.iter().zip(y.iter_mut()) {
        *b = alpha.mul_add(a, *b);
    }
}

/// `x ← αx`.
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    for v in x {
        *v *= alpha;
    }
}

/// `y ← x`.
pub fn copy<T: Scalar>(x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "copy: length mismatch");
    y.copy_from_slice(x);
}

/// Euclidean norm `‖x‖₂`.
pub fn nrm2<T: Scalar>(x: &[T]) -> T {
    dot(x, x).sqrt()
}

/// Sum of absolute values `‖x‖₁`.
pub fn asum<T: Scalar>(x: &[T]) -> T {
    x.iter().fold(T::ZERO, |acc, v| acc + v.abs())
}

/// Index of the element with the largest absolute value (first on ties);
/// `None` on an empty slice.
pub fn iamax<T: Scalar>(x: &[T]) -> Option<usize> {
    let mut best: Option<(usize, T)> = None;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        match best {
            Some((_, b)) if !(a > b) => {}
            _ => best = Some((i, a)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_axpy_scal() {
        let x = vec![1.0f64, 2.0, 3.0];
        let mut y = vec![4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
        scal(0.5, &mut y);
        assert_eq!(y, vec![3.0, 4.5, 6.0]);
    }

    #[test]
    fn norms() {
        let x = vec![3.0f32, -4.0];
        assert_eq!(nrm2(&x), 5.0);
        assert_eq!(asum(&x), 7.0);
    }

    #[test]
    fn iamax_prefers_first_tie() {
        assert_eq!(iamax(&[1.0f64, -3.0, 3.0]), Some(1));
        assert_eq!(iamax::<f64>(&[]), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0f64], &[1.0, 2.0]);
    }
}
