//! Level-3 (matrix-matrix) routine — used by tests and refactorization
//! checks, not by the per-iteration solver path.

use crate::dense::DenseMatrix;
use crate::scalar::Scalar;

/// `C ← αAB + βC`.
pub fn gemm<T: Scalar>(
    alpha: T,
    a: &DenseMatrix<T>,
    b: &DenseMatrix<T>,
    beta: T,
    c: &mut DenseMatrix<T>,
) {
    assert_eq!(a.cols(), b.rows(), "gemm: inner dimension mismatch");
    assert_eq!(a.rows(), c.rows(), "gemm: C row mismatch");
    assert_eq!(b.cols(), c.cols(), "gemm: C col mismatch");
    let m = a.rows();
    for j in 0..b.cols() {
        let cj = c.col_mut(j);
        for v in cj.iter_mut() {
            *v *= beta;
        }
    }
    // jki order: innermost loop streams a column of A and C.
    for j in 0..b.cols() {
        for k in 0..a.cols() {
            let s = alpha * b.get(k, j);
            if s == T::ZERO {
                continue;
            }
            let ak = a.col(k).as_ptr();
            let cj = c.col_mut(j);
            for i in 0..m {
                // SAFETY: i < m = a.rows() and ak points at a column of A.
                let aik = unsafe { *ak.add(i) };
                cj[i] = s.mul_add(aik, cj[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_small() {
        let a = DenseMatrix::from_rows(&[vec![1.0f64, 2.0], vec![3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let mut c = DenseMatrix::zeros(2, 2);
        gemm(1.0, &a, &b, 0.0, &mut c);
        assert_eq!(
            c,
            DenseMatrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]])
        );
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = DenseMatrix::from_rows(&[vec![1.0f32, 2.0], vec![3.0, 4.0]]);
        let i = DenseMatrix::identity(2);
        let mut c = DenseMatrix::zeros(2, 2);
        gemm(1.0, &a, &i, 0.0, &mut c);
        assert_eq!(c, a);
    }

    #[test]
    fn gemm_beta_accumulates() {
        let a = DenseMatrix::<f64>::identity(2);
        let b = DenseMatrix::identity(2);
        let mut c = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        gemm(2.0, &a, &b, 3.0, &mut c);
        assert_eq!(c.get(0, 0), 5.0);
        assert_eq!(c.get(0, 1), 3.0);
    }
}
