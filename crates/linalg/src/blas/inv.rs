//! Matrix inversion and linear solves for basis (re)factorization.
//!
//! The revised simplex method maintains `B⁻¹` explicitly (the paper's
//! approach) and periodically recomputes it from the basis columns to purge
//! accumulated rank-1-update error. Gauss–Jordan with partial pivoting is the
//! classic choice. The elimination works on an internal row-major copy so
//! every row operation is a contiguous slice loop — this runs once per
//! `refactor_period` iterations on an `m × m` matrix and must not dominate
//! the solve.

use crate::dense::DenseMatrix;
use crate::scalar::Scalar;

/// Row-major workspace for elimination.
struct Rows<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Scalar> Rows<T> {
    fn from_dense(a: &DenseMatrix<T>) -> Self {
        Rows {
            n: a.cols(),
            data: a.to_row_major(),
        }
    }

    fn identity(n: usize) -> Self {
        let mut data = vec![T::ZERO; n * n];
        for i in 0..n {
            data[i * n + i] = T::ONE;
        }
        Rows { n, data }
    }

    #[inline]
    fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    #[inline]
    fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> T {
        self.data[i * self.n + j]
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let n = self.n;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (left, right) = self.data.split_at_mut(hi * n);
        left[lo * n..(lo + 1) * n].swap_with_slice(&mut right[..n]);
    }

    fn scale_row(&mut self, r: usize, s: T) {
        for v in self.row_mut(r) {
            *v *= s;
        }
    }

    /// `row[i] ← row[i] − f·row[k]` (contiguous slices).
    fn sub_scaled_row(&mut self, i: usize, k: usize, f: T) {
        let n = self.n;
        let (ri, rk) = if i < k {
            let (left, right) = self.data.split_at_mut(k * n);
            (&mut left[i * n..(i + 1) * n], &right[..n])
        } else {
            let (left, right) = self.data.split_at_mut(i * n);
            (&mut right[..n], &left[k * n..(k + 1) * n])
        };
        for (a, &b) in ri.iter_mut().zip(rk) {
            *a -= f * b;
        }
    }

    fn to_dense(&self) -> DenseMatrix<T> {
        let mut m = DenseMatrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for (j, &v) in self.row(i).iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }
}

/// Invert a square matrix by Gauss–Jordan elimination with partial pivoting.
///
/// Returns `None` when the matrix is numerically singular (best pivot below
/// a scale-relative threshold).
pub fn gauss_jordan_invert<T: Scalar>(a: &DenseMatrix<T>) -> Option<DenseMatrix<T>> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "inverse of a non-square matrix");
    let mut work = Rows::from_dense(a);
    let mut inv = Rows::<T>::identity(n);
    let scale = a.max_abs().maxs(T::ONE);
    let tiny = scale * T::epsilon() * T::from_f64(n as f64 * 16.0);

    for k in 0..n {
        // Partial pivot: the largest |work[i, k]| for i >= k.
        let mut piv = k;
        let mut best = work.get(k, k).abs();
        for i in k + 1..n {
            let v = work.get(i, k).abs();
            if v > best {
                best = v;
                piv = i;
            }
        }
        if !(best > tiny) {
            return None;
        }
        work.swap_rows(k, piv);
        inv.swap_rows(k, piv);
        let d = T::ONE / work.get(k, k);
        work.scale_row(k, d);
        inv.scale_row(k, d);
        for i in 0..n {
            if i == k {
                continue;
            }
            let f = work.get(i, k);
            if f == T::ZERO {
                continue;
            }
            work.sub_scaled_row(i, k, f);
            inv.sub_scaled_row(i, k, f);
        }
    }
    Some(inv.to_dense())
}

/// Solve `Ax = b` by Gaussian elimination with partial pivoting (used as an
/// oracle in tests; the solver itself keeps `B⁻¹`).
pub fn lu_solve<T: Scalar>(a: &DenseMatrix<T>, b: &[T]) -> Option<Vec<T>> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "lu_solve: non-square matrix");
    assert_eq!(n, b.len(), "lu_solve: rhs length mismatch");
    let mut work = Rows::from_dense(a);
    let mut rhs = b.to_vec();
    let scale = a.max_abs().maxs(T::ONE);
    let tiny = scale * T::epsilon() * T::from_f64(n as f64 * 16.0);

    for k in 0..n {
        let mut piv = k;
        let mut best = work.get(k, k).abs();
        for i in k + 1..n {
            let v = work.get(i, k).abs();
            if v > best {
                best = v;
                piv = i;
            }
        }
        if !(best > tiny) {
            return None;
        }
        work.swap_rows(k, piv);
        rhs.swap(k, piv);
        for i in k + 1..n {
            let f = work.get(i, k) / work.get(k, k);
            if f == T::ZERO {
                continue;
            }
            work.sub_scaled_row(i, k, f);
            let rk = rhs[k];
            rhs[i] -= f * rk;
        }
    }
    let mut x = vec![T::ZERO; n];
    for k in (0..n).rev() {
        let mut acc = rhs[k];
        let row = work.row(k);
        for j in k + 1..n {
            acc -= row[j] * x[j];
        }
        x[k] = acc / row[k];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::gemm;

    #[test]
    fn invert_identity() {
        let i = DenseMatrix::<f64>::identity(4);
        assert_eq!(gauss_jordan_invert(&i).unwrap(), i);
    }

    #[test]
    fn invert_known_2x2() {
        let a = DenseMatrix::from_rows(&[vec![4.0f64, 7.0], vec![2.0, 6.0]]);
        let inv = gauss_jordan_invert(&a).unwrap();
        assert!((inv.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((inv.get(0, 1) + 0.7).abs() < 1e-12);
        assert!((inv.get(1, 0) + 0.2).abs() < 1e-12);
        assert!((inv.get(1, 1) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        // A needs a row swap (zero on the first pivot) to exercise pivoting.
        let a = DenseMatrix::from_rows(&[
            vec![0.0f64, 2.0, 1.0],
            vec![1.0, 0.0, 3.0],
            vec![2.0, 1.0, 0.0],
        ]);
        let inv = gauss_jordan_invert(&a).unwrap();
        let mut prod = DenseMatrix::zeros(3, 3);
        gemm(1.0, &inv, &a, 0.0, &mut prod);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (prod.get(i, j) - expect).abs() < 1e-12,
                    "({i},{j}) = {}",
                    prod.get(i, j)
                );
            }
        }
    }

    #[test]
    fn larger_random_inverse_is_accurate() {
        // Deterministic pseudo-random diagonally-dominant matrix.
        let n = 48;
        let mut a = DenseMatrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = (((i * 31 + j * 17 + 7) % 23) as f64 - 11.0) / 23.0;
                a.set(i, j, v + if i == j { 4.0 } else { 0.0 });
            }
        }
        let inv = gauss_jordan_invert(&a).unwrap();
        let mut prod = DenseMatrix::zeros(n, n);
        gemm(1.0, &inv, &a, 0.0, &mut prod);
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = DenseMatrix::from_rows(&[vec![1.0f64, 2.0], vec![2.0, 4.0]]);
        assert!(gauss_jordan_invert(&a).is_none());
        assert!(lu_solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn lu_solve_matches_inverse() {
        let a = DenseMatrix::from_rows(&[
            vec![3.0f64, 1.0, -2.0],
            vec![1.0, -5.0, 2.0],
            vec![2.0, 2.0, 7.0],
        ]);
        let b = vec![6.0, -4.0, 23.0];
        let x = lu_solve(&a, &b).unwrap();
        for i in 0..3 {
            let mut acc = 0.0;
            for j in 0..3 {
                acc += a.get(i, j) * x[j];
            }
            assert!((acc - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn f32_inverse_is_reasonable() {
        let a = DenseMatrix::from_rows(&[vec![2.0f32, 1.0], vec![1.0, 3.0]]);
        let inv = gauss_jordan_invert(&a).unwrap();
        let mut prod = DenseMatrix::zeros(2, 2);
        gemm(1.0, &inv, &a, 0.0, &mut prod);
        assert!((prod.get(0, 0) - 1.0).abs() < 1e-5);
        assert!(prod.get(0, 1).abs() < 1e-5);
    }
}
