//! Sparse LU factorization of a simplex basis (Markowitz + threshold
//! pivoting), the stage-2 basis engine behind
//! `BasisRepresentation::SparseLU`.
//!
//! The explicit inverse and the product form both anchor on a dense
//! `B₀⁻¹`, so every FTRAN/BTRAN pays O(m²) even when the basis is 99%
//! slack columns. This module factorizes `B₀` itself:
//!
//! ```text
//! P_r B₀ P_c = L · U
//! ```
//!
//! with `L` unit lower triangular and `U` upper triangular in the
//! elimination ordering, both stored CSC. FTRAN/BTRAN become two sparse
//! triangular solves each — O(nnz(L) + nnz(U) + m) — and the eta chain on
//! top is unchanged, so an iteration costs O(nnz + m·k) against the dense
//! paths' O(m²).
//!
//! Pivot selection is classic Markowitz: at each elimination step pick the
//! active entry minimizing `(r_i − 1)·(c_j − 1)` (the fill-in bound from
//! eliminating on it), restricted to entries passing the *threshold* test
//! `|a_ij| ≥ τ·max|a_*j|` so stability never loses to sparsity outright.
//! Candidates failing the threshold are counted
//! ([`LuStats::markowitz_rejections`]) — the solver surfaces the count so
//! a drifting basis shows up in metrics before it shows up as a singular
//! reinversion. The search scans the few smallest-count active columns
//! (MA48-style bounded search), which keeps selection cost near-linear
//! without giving up the ordering quality on simplex bases.
//!
//! All elimination arithmetic runs in f64 regardless of the stored scalar
//! (the same policy as the dense Gauss–Jordan reinversion path: a
//! refactorization exists to purge error); the finished factors are then
//! narrowed to `T` once. Ordering is fully deterministic — candidate ties
//! break on (cost, column, row) — so a resumed solve that refactorizes the
//! same basis reproduces the factors bitwise.

use crate::scalar::Scalar;
use crate::sparse::{CooMatrix, CscMatrix};
use std::collections::{BTreeMap, BTreeSet};

/// How many smallest-count active columns each pivot search inspects.
const SEARCH_COLS: usize = 8;

/// Counters from one factorization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LuStats {
    /// Nonzeros of the basis matrix handed to the factorization.
    pub base_nnz: usize,
    /// Nonzeros of the factors: nnz(L) (unit diagonal excluded) +
    /// nnz(U) (diagonal included).
    pub factor_nnz: usize,
    /// `factor_nnz − base_nnz`, floored at zero: the fill-in the Markowitz
    /// ordering failed to avoid.
    pub fill_in: usize,
    /// Pivot candidates rejected by the threshold test `|a| ≥ τ·colmax`.
    pub markowitz_rejections: usize,
    /// Floating-point operations spent eliminating (for cost models).
    pub factor_flops: u64,
}

/// A sparse LU factorization `P_r B P_c = L U` with CSC factors.
///
/// Coordinates: "elimination space" indexes pivots in the order they were
/// chosen; `row_perm[k]`/`col_perm[k]` give the original row/column pivoted
/// at step `k`. `L` is strictly lower triangular in elimination space (the
/// unit diagonal is implicit); `U` is split into its strictly upper part
/// and the dense diagonal `u_diag`.
#[derive(Debug, Clone)]
pub struct SparseLu<T: Scalar> {
    m: usize,
    /// Strictly lower factor, CSC in elimination space.
    l: CscMatrix<T>,
    /// Strictly upper factor, CSC in elimination space.
    u: CscMatrix<T>,
    /// Diagonal of `U` in elimination space (all nonzero).
    u_diag: Vec<T>,
    /// Elimination step → original row.
    row_perm: Vec<u32>,
    /// Elimination step → original column.
    col_perm: Vec<u32>,
    stats: LuStats,
}

impl<T: Scalar> SparseLu<T> {
    /// Factorize an m×m basis given as sparse columns of `(row, value)`
    /// pairs (rows in any order, no duplicates). `tau` is the threshold-
    /// pivoting parameter in (0, 1]; 0.1 is the classic default. Returns
    /// `None` when the basis is structurally or numerically singular.
    pub fn factorize(m: usize, cols: &[Vec<(usize, f64)>], tau: f64) -> Option<Self> {
        assert_eq!(cols.len(), m, "basis must be square");
        let tau = tau.clamp(1e-8, 1.0);
        let mut stats = LuStats::default();

        // Working matrix: rows as ordered maps col → value, plus the
        // column → {rows} structure for Markowitz counts and column scans.
        let mut rows: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); m];
        let mut col_rows: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); m];
        for (j, col) in cols.iter().enumerate() {
            for &(i, v) in col {
                assert!(i < m, "row index out of range");
                if v != 0.0 {
                    let dup = rows[i].insert(j, v).is_some();
                    assert!(!dup, "duplicate entry in basis column {j}");
                    col_rows[j].insert(i);
                    stats.base_nnz += 1;
                }
            }
        }

        let mut col_active = vec![true; m];
        let mut row_perm = Vec::with_capacity(m);
        let mut col_perm = Vec::with_capacity(m);
        // Factor triplets in (elimination step, original index) coords.
        let mut l_trips: Vec<(usize, usize, f64)> = Vec::new();
        let mut u_trips: Vec<(usize, usize, f64)> = Vec::new();
        let mut u_diag64 = Vec::with_capacity(m);
        let mut active_cols: Vec<usize> = (0..m).collect();

        for _step in 0..m {
            // --- Markowitz pivot search over the smallest-count columns.
            active_cols.retain(|&j| col_active[j]);
            let mut order: Vec<usize> = active_cols.clone();
            order.sort_by_key(|&j| (col_rows[j].len(), j));
            // The sort is ascending by count: a zero-count *first* column
            // means some active column is zero over the active rows — the
            // remaining submatrix is singular.
            if col_rows[*order.first()?].is_empty() {
                return None;
            }
            let mut best: Option<(usize, usize, usize)> = None; // (cost, j, i)
            for &j in order.iter().take(SEARCH_COLS) {
                let cc = col_rows[j].len();
                let colmax = col_rows[j]
                    .iter()
                    .map(|&i| rows[i][&j].abs())
                    .fold(0.0f64, f64::max);
                if colmax == 0.0 {
                    continue;
                }
                for &i in &col_rows[j] {
                    let v = rows[i][&j];
                    if v.abs() < tau * colmax {
                        stats.markowitz_rejections += 1;
                        continue;
                    }
                    let cost = (rows[i].len() - 1) * (cc - 1);
                    let better = match best {
                        None => true,
                        Some((bc, bj, bi)) => (cost, j, i) < (bc, bj, bi),
                    };
                    if better {
                        best = Some((cost, j, i));
                    }
                }
            }
            let (_, pj, pi) = best?;
            let piv = rows[pi][&pj];
            row_perm.push(pi as u32);
            col_perm.push(pj as u32);
            let k = row_perm.len() - 1;
            col_active[pj] = false;

            // --- Emit U row k: the pivot row's surviving entries.
            u_diag64.push(piv);
            for (&c, &v) in &rows[pi] {
                if c != pj {
                    u_trips.push((k, c, v));
                }
                col_rows[c].remove(&pi);
            }

            // --- Eliminate the pivot column from the remaining rows.
            let below: Vec<usize> = col_rows[pj].iter().copied().collect();
            let prow: Vec<(usize, f64)> = rows[pi]
                .iter()
                .filter(|&(&c, _)| c != pj)
                .map(|(&c, &v)| (c, v))
                .collect();
            for i in below {
                let aij = rows[i].remove(&pj).expect("column structure out of sync");
                col_rows[pj].remove(&i);
                let lik = aij / piv;
                stats.factor_flops += 1;
                l_trips.push((k, i, lik));
                for &(c, v) in &prow {
                    stats.factor_flops += 2;
                    match rows[i].entry(c) {
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            let nv = *e.get() - lik * v;
                            if nv == 0.0 {
                                // Exact cancellation: drop it, or it
                                // haunts the counts as a structural zero.
                                e.remove();
                                col_rows[c].remove(&i);
                            } else {
                                *e.get_mut() = nv;
                            }
                        }
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(-lik * v);
                            col_rows[c].insert(i);
                        }
                    }
                }
            }
        }

        // --- Map original indices to elimination positions and build the
        // CSC factors (narrowing f64 → T here, once).
        let mut inv_row = vec![0usize; m];
        let mut inv_col = vec![0usize; m];
        for (k, &r) in row_perm.iter().enumerate() {
            inv_row[r as usize] = k;
        }
        for (k, &c) in col_perm.iter().enumerate() {
            inv_col[c as usize] = k;
        }
        let mut l_coo = CooMatrix::<T>::new(m, m);
        for &(k, i, v) in &l_trips {
            l_coo.push(inv_row[i], k, T::from_f64(v));
        }
        let mut u_coo = CooMatrix::<T>::new(m, m);
        for &(k, c, v) in &u_trips {
            u_coo.push(k, inv_col[c], T::from_f64(v));
        }
        let l = l_coo.to_csr().to_csc();
        let u = u_coo.to_csr().to_csc();
        stats.factor_nnz = l.nnz() + u.nnz() + m;
        stats.fill_in = stats.factor_nnz.saturating_sub(stats.base_nnz);
        Some(SparseLu {
            m,
            l,
            u,
            u_diag: u_diag64.iter().map(|&d| T::from_f64(d)).collect(),
            row_perm,
            col_perm,
            stats,
        })
    }

    /// Dimension.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Factorization counters.
    pub fn stats(&self) -> LuStats {
        self.stats
    }

    /// Strictly lower factor (CSC, elimination space, unit diagonal
    /// implicit).
    pub fn l(&self) -> &CscMatrix<T> {
        &self.l
    }

    /// Strictly upper factor (CSC, elimination space).
    pub fn u(&self) -> &CscMatrix<T> {
        &self.u
    }

    /// Diagonal of `U` in elimination space.
    pub fn u_diag(&self) -> &[T] {
        &self.u_diag
    }

    /// Elimination step → original row.
    pub fn row_perm(&self) -> &[u32] {
        &self.row_perm
    }

    /// Elimination step → original column.
    pub fn col_perm(&self) -> &[u32] {
        &self.col_perm
    }

    /// Flops of one FTRAN or BTRAN through the factors (for cost models).
    pub fn solve_flops(&self) -> u64 {
        2 * (self.l.nnz() + self.u.nnz()) as u64 + 4 * self.m as u64
    }

    /// FTRAN through the factors: `x ← B⁻¹ x`. `scratch` must be length m.
    pub fn ftran_in_place(&self, x: &mut [T], scratch: &mut [T]) {
        let m = self.m;
        assert_eq!(x.len(), m);
        assert_eq!(scratch.len(), m);
        // Permute into elimination space: z_k = x[row_perm[k]].
        for k in 0..m {
            scratch[k] = x[self.row_perm[k] as usize];
        }
        // Forward solve L z = b (unit diagonal), scattering column k.
        for k in 0..m {
            let zk = scratch[k];
            if zk != T::ZERO {
                for (i, v) in self.l.col(k) {
                    scratch[i] -= v * zk;
                }
            }
        }
        // Backward solve U y = z, scattering column j above the diagonal.
        for j in (0..m).rev() {
            let yj = scratch[j] / self.u_diag[j];
            scratch[j] = yj;
            if yj != T::ZERO {
                for (k, v) in self.u.col(j) {
                    scratch[k] -= v * yj;
                }
            }
        }
        // Permute back: x[col_perm[k]] = y_k.
        for k in 0..m {
            x[self.col_perm[k] as usize] = scratch[k];
        }
    }

    /// BTRAN through the factors: `y ← B⁻ᵀ y` (i.e. solve `Bᵀ y = c`).
    /// `scratch` must be length m.
    pub fn btran_in_place(&self, y: &mut [T], scratch: &mut [T]) {
        let m = self.m;
        assert_eq!(y.len(), m);
        assert_eq!(scratch.len(), m);
        // Permute into elimination space: z_k = y[col_perm[k]].
        for k in 0..m {
            scratch[k] = y[self.col_perm[k] as usize];
        }
        // Forward solve Uᵀ z = ĉ, gathering column j below... above the
        // diagonal of U — column j holds U_{k,j}, k < j.
        for j in 0..m {
            let mut acc = scratch[j];
            for (k, v) in self.u.col(j) {
                acc -= v * scratch[k];
            }
            scratch[j] = acc / self.u_diag[j];
        }
        // Backward solve Lᵀ w = z (unit diagonal), gathering column k.
        for k in (0..m).rev() {
            let mut acc = scratch[k];
            for (i, v) in self.l.col(k) {
                acc -= v * scratch[i];
            }
            scratch[k] = acc;
        }
        // Permute back: y[row_perm[k]] = w_k.
        for k in 0..m {
            y[self.row_perm[k] as usize] = scratch[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas;
    use crate::dense::DenseMatrix;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// A random sparse nonsingular basis: identity + off-diagonal spray.
    fn random_basis(m: usize, extra: usize, seed: &mut u64) -> Vec<Vec<(usize, f64)>> {
        let mut cols: Vec<Vec<(usize, f64)>> = (0..m).map(|j| vec![(j, 2.0 + lcg(seed))]).collect();
        for _ in 0..extra {
            let i = (lcg(seed).abs() * m as f64) as usize % m;
            let j = (lcg(seed).abs() * m as f64) as usize % m;
            if i != j && !cols[j].iter().any(|&(r, _)| r == i) {
                cols[j].push((i, 0.5 * lcg(seed)));
            }
        }
        cols
    }

    fn dense_of(cols: &[Vec<(usize, f64)>], m: usize) -> DenseMatrix<f64> {
        let mut d = DenseMatrix::zeros(m, m);
        for (j, col) in cols.iter().enumerate() {
            for &(i, v) in col {
                d.set(i, j, v);
            }
        }
        d
    }

    #[test]
    fn ftran_btran_match_dense_inverse() {
        let mut seed = 42u64;
        for (m, extra) in [(1usize, 0usize), (6, 10), (24, 60), (48, 160)] {
            let cols = random_basis(m, extra, &mut seed);
            let lu = SparseLu::<f64>::factorize(m, &cols, 0.1).expect("nonsingular");
            let inv = blas::gauss_jordan_invert(&dense_of(&cols, m)).expect("invertible");
            let b: Vec<f64> = (0..m).map(|i| 0.25 + i as f64 * 0.5).collect();
            // FTRAN: x = B⁻¹ b.
            let mut x = b.clone();
            let mut scratch = vec![0.0; m];
            lu.ftran_in_place(&mut x, &mut scratch);
            let mut expect = vec![0.0; m];
            blas::gemv_n(1.0, &inv, &b, 0.0, &mut expect);
            for (a, e) in x.iter().zip(&expect) {
                assert!((a - e).abs() < 1e-9, "ftran {a} vs {e} (m={m})");
            }
            // BTRAN: yᵀ = bᵀ B⁻¹.
            let mut y = b.clone();
            lu.btran_in_place(&mut y, &mut scratch);
            let mut expect_t = vec![0.0; m];
            blas::gemv_t(1.0, &inv, &b, 0.0, &mut expect_t);
            for (a, e) in y.iter().zip(&expect_t) {
                assert!((a - e).abs() < 1e-9, "btran {a} vs {e} (m={m})");
            }
        }
    }

    #[test]
    fn identity_factors_are_empty() {
        let m = 7;
        let cols: Vec<Vec<(usize, f64)>> = (0..m).map(|j| vec![(j, 1.0)]).collect();
        let lu = SparseLu::<f64>::factorize(m, &cols, 0.1).unwrap();
        let s = lu.stats();
        assert_eq!(s.base_nnz, m);
        assert_eq!(s.factor_nnz, m); // just the diagonal of U
        assert_eq!(s.fill_in, 0);
        assert_eq!(s.markowitz_rejections, 0);
        let mut x = vec![3.0; m];
        let mut scratch = vec![0.0; m];
        lu.ftran_in_place(&mut x, &mut scratch);
        assert_eq!(x, vec![3.0; m]);
    }

    #[test]
    fn singular_basis_is_rejected() {
        // Column 1 duplicates column 0 structurally and numerically.
        let cols = vec![vec![(0, 1.0), (1, 2.0)], vec![(0, 1.0), (1, 2.0)]];
        assert!(SparseLu::<f64>::factorize(2, &cols, 0.1).is_none());
        // Structurally empty column.
        let cols2: Vec<Vec<(usize, f64)>> = vec![vec![(0, 1.0)], vec![]];
        assert!(SparseLu::<f64>::factorize(2, &cols2, 0.1).is_none());
    }

    #[test]
    fn threshold_rejects_tiny_pivots() {
        // Column 0 has a tiny entry in row 0 and a big one in row 1; τ=0.5
        // must reject the tiny candidate (and count it) even though its
        // Markowitz cost is attractive.
        let cols = vec![vec![(0, 1e-9), (1, 1.0)], vec![(0, 1.0), (1, 0.5)]];
        let lu = SparseLu::<f64>::factorize(2, &cols, 0.5).unwrap();
        assert!(lu.stats().markowitz_rejections >= 1);
        // Factors still solve correctly.
        let inv = blas::gauss_jordan_invert(&dense_of(&cols, 2)).unwrap();
        let b = vec![1.0, 2.0];
        let mut x = b.clone();
        let mut scratch = vec![0.0; 2];
        lu.ftran_in_place(&mut x, &mut scratch);
        let mut expect = vec![0.0; 2];
        blas::gemv_n(1.0, &inv, &b, 0.0, &mut expect);
        for (a, e) in x.iter().zip(&expect) {
            assert!((a - e).abs() < 1e-9);
        }
    }

    #[test]
    fn factorization_is_deterministic() {
        let mut s1 = 7u64;
        let cols = random_basis(32, 80, &mut s1);
        let a = SparseLu::<f64>::factorize(32, &cols, 0.1).unwrap();
        let b = SparseLu::<f64>::factorize(32, &cols, 0.1).unwrap();
        assert_eq!(a.row_perm(), b.row_perm());
        assert_eq!(a.col_perm(), b.col_perm());
        assert_eq!(a.l(), b.l());
        assert_eq!(a.u(), b.u());
        assert_eq!(a.stats(), b.stats());
    }
}
