//! Differential parity suite for the block-per-LP mega-batch path: every
//! member of an SoA super-job must be **bitwise** indistinguishable from a
//! solo `cpu-dense` solve — same status, same objective bits, same pivot
//! fingerprint — and a faulted member must fail alone.

use gplex::batch::{BatchOptions, BatchSolver, PlacementPolicy};
use gplex::{
    mega_compatible, solve_on, solve_standard, try_solve_family_mega,
    try_solve_family_mega_recorded, BackendKind, SolverOptions, Status, StepKind, TraceRecorder,
};
use gpu_sim::{DeviceSpec, Gpu};
use lp::generator::{self, fixtures};
use lp::{LinearProgram, StandardForm};

fn raw_opts() -> SolverOptions {
    SolverOptions {
        presolve: false,
        scale: false,
        ..Default::default()
    }
}

fn standardize(jobs: &[LinearProgram]) -> Vec<StandardForm<f64>> {
    jobs.iter()
        .map(|lp| StandardForm::<f64>::from_lp(lp).expect("generated models standardize"))
        .collect()
}

/// Core differential harness: solve `sfs` as one lockstep family and pin
/// every lane bitwise to the solo `cpu-dense` solve of the same form.
fn assert_family_matches_solo(sfs: &[StandardForm<f64>], opts: &SolverOptions) {
    let gpu = Gpu::new(DeviceSpec::gtx280());
    let refs: Vec<&StandardForm<f64>> = sfs.iter().collect();
    let warm = vec![None; sfs.len()];
    let lanes = try_solve_family_mega::<f64>(&gpu, &refs, opts, warm).expect("family machinery ok");
    assert_eq!(lanes.len(), sfs.len());
    for (b, lane) in lanes.into_iter().enumerate() {
        let mega = lane.unwrap_or_else(|e| panic!("lane {b} failed: {e}"));
        let solo = solve_standard::<f64>(&sfs[b], opts, &BackendKind::CpuDense);
        assert_eq!(mega.status, solo.status, "lane {b} status");
        assert_eq!(mega.basis, solo.basis, "lane {b} terminal basis");
        assert_eq!(
            mega.stats.iterations, solo.stats.iterations,
            "lane {b} iteration count"
        );
        assert_eq!(
            mega.stats.pivot_fingerprint, solo.stats.pivot_fingerprint,
            "lane {b} pivot fingerprint"
        );
        assert_eq!(
            mega.z_std.to_bits(),
            solo.z_std.to_bits(),
            "lane {b} objective bits: {} vs {}",
            mega.z_std,
            solo.z_std
        );
        assert_eq!(mega.x_std.len(), solo.x_std.len());
        for (j, (a, c)) in mega.x_std.iter().zip(&solo.x_std).enumerate() {
            assert_eq!(a.to_bits(), c.to_bits(), "lane {b} x_std[{j}]: {a} vs {c}");
        }
    }
}

/// Bitwise per-member parity for a perturbed family (same `A`, jittered
/// `b`/`c` — the headline mega-batch workload).
#[test]
fn perturbed_family_bitwise_parity() {
    let jobs = generator::perturbed_family(8, 6, 9, 42, 0.05);
    assert_family_matches_solo(&standardize(&jobs), &raw_opts());
}

/// Unrelated same-shape instances (different `A` per lane) also hold
/// parity: the SoA layout shares nothing across lanes but the shape.
#[test]
fn unrelated_same_shape_batch_bitwise_parity() {
    let jobs: Vec<LinearProgram> = (0..6).map(|s| generator::dense_random(8, 12, s)).collect();
    assert_family_matches_solo(&standardize(&jobs), &raw_opts());
}

/// Width 1 is the degenerate block: one lane, still the batched kernels.
#[test]
fn width_one_family_bitwise_parity() {
    let jobs = vec![generator::dense_random(7, 10, 23)];
    assert_family_matches_solo(&standardize(&jobs), &raw_opts());
}

/// Two-phase members (equality rows force artificials) run phase 1 in
/// lockstep, drive artificials out per lane, and still match solo bitwise.
#[test]
fn two_phase_family_bitwise_parity() {
    let jobs: Vec<LinearProgram> = (0..4)
        .map(|k| generator::transportation(&[30.0, 70.0], &[40.0 + k as f64, 60.0 - k as f64], 3))
        .collect();
    let sfs = standardize(&jobs);
    assert!(sfs[0].num_artificials > 0, "fixture must need phase 1");
    assert_family_matches_solo(&sfs, &raw_opts());
}

/// Bland and Dantzig lanes both replicate their solo pivot sequences.
#[test]
fn bland_rule_family_bitwise_parity() {
    let opts = SolverOptions {
        pivot_rule: gplex::PivotRule::Bland,
        ..raw_opts()
    };
    let jobs: Vec<LinearProgram> = (0..4)
        .map(|s| generator::dense_random(6, 9, s + 50))
        .collect();
    assert_family_matches_solo(&standardize(&jobs), &opts);
}

/// End-to-end through [`BatchSolver`]: grouped jobs return the same
/// `LpSolution` (status, objective bits, fingerprint) as the solo pipeline,
/// with presolve and scaling on.
#[test]
fn batch_solver_mega_matches_solo_pipeline_bitwise() {
    let jobs = generator::perturbed_family(6, 6, 8, 7, 0.02);
    let solver = BatchSolver::new(BatchOptions {
        mega_batch: true,
        ..Default::default()
    });
    let report = solver.solve::<f64>(&jobs);
    assert!(report.all_solved());
    assert_eq!(report.stats.mega_groups, 1);
    assert_eq!(report.stats.grouped_jobs, 6);
    assert_eq!(report.stats.ungrouped_jobs, 0);
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(r.backend, "batch-kernel", "job {i} must be grouped");
        let sol = r.outcome.solution().expect("solved");
        let solo = solve_on::<f64>(&jobs[i], &SolverOptions::default(), &BackendKind::CpuDense);
        assert_eq!(sol.status, solo.status, "job {i}");
        assert_eq!(
            sol.objective.to_bits(),
            solo.objective.to_bits(),
            "job {i} objective bits: {} vs {}",
            sol.objective,
            solo.objective
        );
        assert_eq!(
            sol.stats.pivot_fingerprint, solo.stats.pivot_fingerprint,
            "job {i} fingerprint"
        );
        for (a, c) in sol.x.iter().zip(&solo.x) {
            assert_eq!(a.to_bits(), c.to_bits(), "job {i} x");
        }
    }
}

/// A poisoned member fails alone: its panic is caught in the pre-pass and
/// its same-shape neighbors still group, solve, and hold bitwise parity.
#[test]
fn poisoned_member_fails_alone_without_corrupting_neighbors() {
    let jobs = vec![
        generator::dense_random(6, 8, 1),
        fixtures::poisoned(),
        generator::dense_random(6, 8, 2),
        generator::dense_random(6, 8, 3),
    ];
    let solver = BatchSolver::new(BatchOptions {
        mega_batch: true,
        ..Default::default()
    });
    let report = solver.solve::<f64>(&jobs);
    assert_eq!(report.stats.panicked, 1);
    assert_eq!(report.stats.solved, 3);
    assert_eq!(report.stats.mega_groups, 1);
    assert_eq!(report.stats.grouped_jobs, 3);
    assert_eq!(report.stats.ungrouped_jobs, 1);
    assert!(report.results[1].outcome.solution().is_none());
    for i in [0usize, 2, 3] {
        let sol = report.results[i]
            .outcome
            .solution()
            .expect("neighbor solved");
        let solo = solve_on::<f64>(&jobs[i], &SolverOptions::default(), &BackendKind::CpuDense);
        assert_eq!(sol.status, solo.status, "job {i}");
        assert_eq!(sol.objective.to_bits(), solo.objective.to_bits(), "job {i}");
        assert_eq!(
            sol.stats.pivot_fingerprint, solo.stats.pivot_fingerprint,
            "job {i}"
        );
    }
}

/// All members converging in the same round: identical lanes leave the
/// block together with identical answers.
#[test]
fn all_members_converge_same_round() {
    let job = generator::dense_random(6, 9, 11);
    let jobs = vec![job.clone(), job.clone(), job];
    let sfs = standardize(&jobs);
    let gpu = Gpu::new(DeviceSpec::gtx280());
    let refs: Vec<&StandardForm<f64>> = sfs.iter().collect();
    let lanes = try_solve_family_mega::<f64>(&gpu, &refs, &raw_opts(), vec![None; 3])
        .expect("machinery ok");
    let results: Vec<_> = lanes.into_iter().map(|l| l.expect("solved")).collect();
    for r in &results {
        assert_eq!(r.status, Status::Optimal);
        assert_eq!(r.stats.iterations, results[0].stats.iterations);
        assert_eq!(
            r.stats.pivot_fingerprint,
            results[0].stats.pivot_fingerprint
        );
        assert_eq!(r.z_std.to_bits(), results[0].z_std.to_bits());
    }
}

/// One member hits the iteration limit while its sibling goes optimal:
/// per-member statuses are right, and after the fast lane converges it
/// stops accruing step spans (idle lanes are free).
#[test]
fn iteration_limit_member_statuses_and_idle_lanes_accrue_nothing() {
    // Find two same-shape instances whose solo iteration counts differ by
    // at least 2, so the fast lane idles for observable rounds.
    let mut picked = None;
    'outer: for sa in 0..20u64 {
        for sb in 0..20u64 {
            if sa == sb {
                continue;
            }
            let a = standardize(&[generator::dense_random(8, 12, sa)]).remove(0);
            let b = standardize(&[generator::dense_random(8, 12, sb)]).remove(0);
            let ia = solve_standard::<f64>(&a, &raw_opts(), &BackendKind::CpuDense)
                .stats
                .iterations;
            let ib = solve_standard::<f64>(&b, &raw_opts(), &BackendKind::CpuDense)
                .stats
                .iterations;
            if ib >= ia + 2 {
                picked = Some((a, b, ia, ib));
                break 'outer;
            }
        }
    }
    let (sf_fast, sf_slow, iters_fast, iters_slow) =
        picked.expect("some seed pair differs by >= 2 iterations");
    // Cap exactly at the slow lane's need: it gets cut off at the limit
    // check before it can price its way to optimality.
    let opts = SolverOptions {
        max_iterations: Some(iters_slow),
        ..raw_opts()
    };
    let gpu = Gpu::new(DeviceSpec::gtx280());
    let refs = vec![&sf_fast, &sf_slow];
    let mut recs = vec![TraceRecorder::default(), TraceRecorder::default()];
    let lanes = try_solve_family_mega_recorded::<f64, TraceRecorder>(
        &gpu,
        &refs,
        &opts,
        vec![None, None],
        Some(&mut recs),
    )
    .expect("machinery ok");
    let fast = lanes[0].as_ref().expect("fast lane solved");
    let slow = lanes[1].as_ref().expect("slow lane returned");
    assert_eq!(fast.status, Status::Optimal);
    assert_eq!(slow.status, Status::IterationLimit);
    assert_eq!(fast.stats.iterations, iters_fast);
    assert_eq!(slow.stats.iterations, iters_slow);
    // The fast lane priced in rounds 1..=iters_fast+1 (its pivots plus the
    // converging round) and then idled; the slow lane priced every round.
    let fast_pricing = recs[0].timings.get(StepKind::Pricing).count;
    let slow_pricing = recs[1].timings.get(StepKind::Pricing).count;
    assert_eq!(fast_pricing, (iters_fast + 1) as u64, "fast lane rounds");
    assert_eq!(slow_pricing, iters_slow as u64, "slow lane rounds");
    assert!(
        fast_pricing < slow_pricing,
        "idle lane must stop accruing spans ({fast_pricing} vs {slow_pricing})"
    );
    // Same for total step time: the idle lane's clock stops at convergence.
    assert!(recs[0].timings.total_time() < recs[1].timings.total_time());
}

/// Warm-seeding a whole group from one family basis: every lane accepts the
/// candidate, skips phase 1, and still lands on the cold answer.
#[test]
fn group_warm_seeding_from_single_family_basis() {
    let jobs = generator::perturbed_family(5, 6, 9, 17, 0.01);
    let sfs = standardize(&jobs);
    let refs: Vec<&StandardForm<f64>> = sfs.iter().collect();
    let opts = raw_opts();
    let gpu = Gpu::new(DeviceSpec::gtx280());
    let cold = try_solve_family_mega::<f64>(&gpu, &refs, &opts, vec![None; 5])
        .expect("machinery ok")
        .into_iter()
        .map(|l| l.expect("solved"))
        .collect::<Vec<_>>();
    let family_basis = cold[0].basis.clone();
    let warm = vec![Some(family_basis); 5];
    let gpu2 = Gpu::new(DeviceSpec::gtx280());
    let warm_res = try_solve_family_mega::<f64>(&gpu2, &refs, &opts, warm)
        .expect("machinery ok")
        .into_iter()
        .map(|l| l.expect("solved"))
        .collect::<Vec<_>>();
    for (b, (w, c)) in warm_res.iter().zip(&cold).enumerate() {
        assert_eq!(w.status, Status::Optimal, "lane {b}");
        assert_eq!(w.stats.warm_start_attempted, 1, "lane {b}");
        if w.stats.warm_start_rejected == 0 {
            assert_eq!(w.stats.phase1_iterations, 0, "accepted warm skips phase 1");
        }
        assert!(
            (w.z_std - c.z_std).abs() <= 1e-7 * c.z_std.abs().max(1.0),
            "lane {b}: warm {} vs cold {}",
            w.z_std,
            c.z_std
        );
    }
    // Member 0's own basis must be accepted verbatim.
    assert_eq!(warm_res[0].stats.warm_start_rejected, 0);
    assert!(warm_res[0].stats.iterations <= cold[0].stats.iterations);
}

/// Satellite regression: a mixed-shape batch drains 100% with `mega_batch`
/// on — multi-member shapes group, the singleton falls back to
/// stream-per-job (not an error) — and grouped/ungrouped counts stay
/// disjoint.
#[test]
fn mixed_shape_batch_drains_fully_with_disjoint_grouping_counters() {
    let mut jobs = generator::batch_mixed_sizes(9, &[(4, 6), (6, 9), (8, 12)], 7);
    jobs.push(generator::dense_random(10, 14, 99)); // shape singleton
    let solver = BatchSolver::new(BatchOptions {
        mega_batch: true,
        workers: 2,
        ..Default::default()
    });
    let report = solver.solve::<f64>(&jobs);
    assert!(report.all_solved(), "mixed batch must drain 100%");
    assert_eq!(report.results.len(), 10);
    assert_eq!(report.stats.mega_groups, 3);
    assert_eq!(report.stats.grouped_jobs, 9);
    assert_eq!(report.stats.ungrouped_jobs, 1);
    assert_eq!(
        report.stats.grouped_jobs + report.stats.ungrouped_jobs,
        report.stats.jobs,
        "grouped and ungrouped must partition the batch"
    );
    let singleton = &report.results[9];
    assert_ne!(singleton.backend, "batch-kernel", "singleton streams");
    for (i, r) in report.results.iter().enumerate() {
        let sol = r.outcome.solution().expect("solved");
        let solo = solve_on::<f64>(&jobs[i], &SolverOptions::default(), &BackendKind::CpuDense);
        assert_eq!(sol.status, solo.status, "job {i}");
        assert!(
            (sol.objective - solo.objective).abs() <= 1e-9 * solo.objective.abs().max(1.0),
            "job {i}: {} vs {}",
            sol.objective,
            solo.objective
        );
    }
}

/// Out-of-scope options (partial pricing, deadlines) keep the whole batch
/// on the stream path instead of erroring. Fault injection is *in* scope
/// since lane evacuation landed — see the evacuation tests below.
#[test]
fn out_of_scope_options_fall_back_to_stream() {
    let opts = SolverOptions {
        pivot_rule: gplex::PivotRule::PartialDantzig { window: 4 },
        ..Default::default()
    };
    assert!(!mega_compatible(&opts));
    let jobs = generator::perturbed_family(4, 6, 8, 3, 0.02);
    let solver = BatchSolver::new(BatchOptions {
        mega_batch: true,
        solver: opts,
        policy: PlacementPolicy::Fixed(BackendKind::CpuDense),
        ..Default::default()
    });
    let report = solver.solve::<f64>(&jobs);
    assert!(report.all_solved());
    assert_eq!(report.stats.mega_groups, 0);
    assert_eq!(report.stats.grouped_jobs, 0);
    assert_eq!(report.stats.ungrouped_jobs, 4);
}

/// Tentpole acceptance (lane evacuation): a device fault injected
/// mid-round into a width-8 family loses **zero completed work**. Every
/// live lane is evacuated with its latest checkpoint, re-dispatched as a
/// resumed stream solve on the fault-free CPU rung, and every member of
/// the family drains bitwise-identical to a fault-free solo `cpu-dense`
/// solve — status, objective bits, pivot fingerprint, and solution bits.
#[test]
fn mid_round_fault_evacuates_lanes_and_loses_zero_work() {
    use gpu_sim::FaultConfig;

    let jobs = generator::perturbed_family(8, 16, 24, 31, 0.03);
    // A certain *hard* launch failure aimed at the batched update chain
    // (silent corruption would be absorbed by in-lane recovery, not
    // evacuation), with a warmup sized so the first targeted op past it
    // lands mid-solve: by then roughly half the lanes have converged and
    // every still-live lane has crossed a checkpoint boundary (refactor =
    // checkpoint cadence = 4 iterations).
    let opts = SolverOptions {
        refactor_period: 4,
        checkpoint_interval: 4,
        faults: Some(
            FaultConfig {
                kernel_fault: 1.0,
                warmup_ops: 320,
                ..FaultConfig::off(5)
            }
            .only(&["mega_update"]),
        ),
        ..raw_opts()
    };
    assert!(
        mega_compatible(&opts),
        "fault injection must be in scope for the mega path"
    );
    let solver = BatchSolver::new(BatchOptions {
        mega_batch: true,
        solver: opts,
        ..Default::default()
    });
    let report = solver.solve::<f64>(&jobs);
    assert!(
        report.all_solved(),
        "evacuation salvages every lane — a mid-round fault is never an error"
    );
    assert_eq!(report.stats.mega_groups, 1, "the family still groups");
    assert!(
        report.stats.device_faults > 0,
        "the injected fault must actually fire"
    );
    assert!(
        report.stats.resumed_jobs > 0,
        "evacuated lanes must resume from their checkpoints"
    );
    assert_eq!(
        report.stats.evacuated_jobs, 0,
        "a post-warmup fault leaves every live lane a checkpoint (no cold restarts)"
    );
    assert!(
        report.stats.wasted_iterations < report.stats.resumed_jobs as u64 * 4,
        "each resumed lane re-does fewer pivots than one checkpoint interval"
    );

    let clean = SolverOptions {
        refactor_period: 4,
        checkpoint_interval: 4,
        ..raw_opts()
    };
    let mut resumed_seen = 0usize;
    for (i, r) in report.results.iter().enumerate() {
        let sol = r.outcome.solution().expect("terminal solution");
        let solo = solve_on::<f64>(&jobs[i], &clean, &BackendKind::CpuDense);
        assert_eq!(sol.status, solo.status, "job {i} status");
        assert_eq!(
            sol.objective.to_bits(),
            solo.objective.to_bits(),
            "job {i} objective bits: {} vs {}",
            sol.objective,
            solo.objective
        );
        assert_eq!(
            sol.stats.pivot_fingerprint, solo.stats.pivot_fingerprint,
            "job {i}: resumed tail must replay the solo pivot sequence"
        );
        assert_eq!(
            sol.stats.iterations, solo.stats.iterations,
            "job {i}: no pivot is lost, none is duplicated"
        );
        for (a, c) in sol.x.iter().zip(&solo.x) {
            assert_eq!(a.to_bits(), c.to_bits(), "job {i} x");
        }
        if r.resumed {
            resumed_seen += 1;
            assert_eq!(
                r.backend, "cpu-dense",
                "job {i}: evacuees salvage on the fault-free CPU rung"
            );
            assert!(
                !r.evacuated,
                "job {i}: resumed and cold-restart are disjoint"
            );
        }
    }
    assert_eq!(resumed_seen, report.stats.resumed_jobs);
}

/// Determinism of the chaos path: the per-group fault plan is reseeded
/// from (seed, group index), so two fresh runs of the same faulted batch
/// agree on every recovery counter and per-job outcome.
#[test]
fn evacuation_counters_are_deterministic_from_seed() {
    use gpu_sim::FaultConfig;

    let run = || {
        let jobs = generator::perturbed_family(6, 10, 14, 9, 0.02);
        let opts = SolverOptions {
            refactor_period: 4,
            checkpoint_interval: 4,
            faults: Some(FaultConfig::uniform(41, 0.5).only(&["mega_update", "mega_price"])),
            ..raw_opts()
        };
        let report = BatchSolver::new(BatchOptions {
            mega_batch: true,
            solver: opts,
            ..Default::default()
        })
        .solve::<f64>(&jobs);
        let per_job: Vec<_> = report
            .results
            .iter()
            .map(|r| {
                (
                    r.backend,
                    r.evacuated,
                    r.resumed,
                    r.wasted_iterations,
                    r.outcome.status_label().to_string(),
                )
            })
            .collect();
        (
            report.stats.device_faults,
            report.stats.resumed_jobs,
            report.stats.evacuated_jobs,
            report.stats.wasted_iterations,
            per_job,
        )
    };
    assert_eq!(run(), run());
}

/// Satellite regression (fallible construction): a certain transfer fault
/// kills `BatchKernelBackend::try_new` during the initial SoA uploads —
/// before any lane state exists. That surfaces as `BackendError::Device`
/// from the constructor, and at the batch level the whole group falls back
/// to stream-per-job instead of erroring or panicking.
#[test]
fn construction_fault_surfaces_device_error_and_streams_the_group() {
    use gplex::{BackendError, BatchKernelBackend, BatchMember};
    use gpu_sim::{FaultConfig, FaultPlan};

    // Direct: the constructor itself is fallible.
    let sf = standardize(&[generator::dense_random(6, 8, 1)]).remove(0);
    let member = BatchMember {
        a: &sf.a,
        b: &sf.b,
        n_active: sf.num_cols() - sf.num_artificials,
        basis0: &sf.basis0,
    };
    let gpu = Gpu::new(DeviceSpec::gtx280());
    gpu.set_fault_plan(FaultPlan::new(FaultConfig {
        transfer_timeout: 1.0,
        ..FaultConfig::off(11)
    }));
    let err = BatchKernelBackend::<f64>::try_new(&gpu, &[member])
        .err()
        .expect("a certain transfer fault cannot construct the backend");
    assert!(
        matches!(err, BackendError::Device(_)),
        "construction fault must be a device error, got: {err}"
    );

    // End-to-end: the group aborts cleanly and streams on the CPU rung.
    let jobs = generator::perturbed_family(4, 6, 9, 3, 0.02);
    let opts = SolverOptions {
        faults: Some(FaultConfig {
            transfer_timeout: 1.0,
            ..FaultConfig::off(11)
        }),
        ..raw_opts()
    };
    let report = BatchSolver::new(BatchOptions {
        mega_batch: true,
        solver: opts,
        policy: PlacementPolicy::Fixed(BackendKind::CpuDense),
        ..Default::default()
    })
    .solve::<f64>(&jobs);
    assert!(report.all_solved(), "stream fallback must drain the group");
    assert_eq!(
        report.stats.mega_groups, 0,
        "construction fault aborts the group"
    );
    assert_eq!(report.stats.ungrouped_jobs, 4);
    for r in &report.results {
        assert_ne!(r.backend, "batch-kernel", "no lane ran on the dead device");
    }
}

/// Differential regression for in-lane corruption recovery: a silent
/// kernel corruption (NaN-poisoned FTRAN/update output, the fault the SoA
/// path previously never saw because only the BLAS layer polled the
/// corruption flag) is absorbed by that lane's emergency reinversion — the
/// family drains fully, the recovered lane re-converges to the solo
/// optimum, and the whole faulted run is a pure function of the seed. The
/// recovery resets the lane's degenerate-step streak exactly like the solo
/// driver's `recover`, so no lane escalates to Bland on stale evidence.
#[test]
fn silent_corruption_is_absorbed_by_lane_recovery() {
    use gpu_sim::FaultConfig;

    let jobs = generator::perturbed_family(6, 12, 18, 13, 0.05);
    let clean = SolverOptions {
        stall_threshold: 2,
        refactor_period: 4,
        ..raw_opts()
    };
    let faulty = SolverOptions {
        faults: Some(
            FaultConfig {
                kernel_corrupt: 0.02,
                warmup_ops: 100,
                ..FaultConfig::off(41)
            }
            .only(&["batch_ftran", "mega_update"]),
        ),
        ..clean.clone()
    };
    assert!(
        mega_compatible(&faulty),
        "corruption injection must be in scope for the mega path"
    );

    let run = || {
        let solver = BatchSolver::new(BatchOptions {
            mega_batch: true,
            solver: faulty.clone(),
            ..Default::default()
        });
        solver.solve::<f64>(&jobs)
    };
    let report = run();
    assert!(
        report.all_solved(),
        "an absorbed corruption is never a terminal error"
    );
    assert_eq!(report.stats.mega_groups, 1, "the family still groups");
    assert!(
        report.stats.device_faults > 0,
        "the injected corruption must actually fire"
    );
    let recoveries: usize = report
        .results
        .iter()
        .filter_map(|r| r.outcome.solution())
        .map(|s| s.stats.nan_recoveries)
        .sum();
    assert!(
        recoveries > 0,
        "the corrupted lane must recover in-lane, not evacuate"
    );
    for (i, r) in report.results.iter().enumerate() {
        let sol = r.outcome.solution().expect("terminal solution");
        let solo = solve_on::<f64>(&jobs[i], &clean, &BackendKind::CpuDense);
        assert_eq!(sol.status, solo.status, "job {i} status");
        assert_eq!(sol.status, Status::Optimal, "job {i} optimal");
        // The off-cadence reinversion reorders the lane's floating point,
        // so the recovered lane matches solo in value, not bitwise.
        assert!(
            (sol.objective - solo.objective).abs() / solo.objective.abs().max(1.0) < 1e-7,
            "job {i}: corrupted-run objective {} vs solo {}",
            sol.objective,
            solo.objective
        );
        for (a, c) in sol.x.iter().zip(&solo.x) {
            assert!((a - c).abs() < 1e-6, "job {i} solution drifted: {a} vs {c}");
        }
    }
    // Chaos determinism: the fault schedule is a pure function of the seed,
    // so a fresh run of the same faulted batch is bitwise identical.
    let again = run();
    assert_eq!(again.stats.device_faults, report.stats.device_faults);
    for (r1, r2) in report.results.iter().zip(&again.results) {
        let s1 = r1.outcome.solution().expect("terminal");
        let s2 = r2.outcome.solution().expect("terminal");
        assert_eq!(s1.objective.to_bits(), s2.objective.to_bits());
        assert_eq!(s1.stats.pivot_fingerprint, s2.stats.pivot_fingerprint);
        assert_eq!(s1.stats.nan_recoveries, s2.stats.nan_recoveries);
    }
}
