//! Batch scheduler integration tests: concurrency must never change
//! answers, and one bad job must never take down the pool.

use std::sync::Arc;

use gplex::batch::{BatchOptions, BatchSolver, JobOutcome, PlacementPolicy};
use gplex::{solve_on, BackendKind, SolverOptions, Status};
use gpu_sim::{DeviceSpec, Gpu};
use lp::generator::{self, fixtures};
use lp::LinearProgram;

fn backends() -> Vec<BackendKind> {
    vec![
        BackendKind::CpuDense,
        BackendKind::CpuSparse,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    ]
}

fn sequential(jobs: &[LinearProgram], kind: &BackendKind) -> Vec<(Status, f64)> {
    jobs.iter()
        .map(|lp| {
            let sol = solve_on::<f64>(lp, &SolverOptions::default(), kind);
            (sol.status, sol.objective)
        })
        .collect()
}

/// The headline equivalence contract: 64 LPs through the pool at 1, 4, and
/// 8 workers produce identical statuses and objectives within 1e-9 of the
/// one-at-a-time `solve_on` baseline, on every backend.
#[test]
fn batch_matches_sequential_on_all_backends_and_worker_counts() {
    let jobs = generator::batch_dense(64, 8, 10, 2000);
    for kind in backends() {
        let baseline = sequential(&jobs, &kind);
        for workers in [1usize, 4, 8] {
            let solver = BatchSolver::new(BatchOptions {
                workers,
                policy: PlacementPolicy::Fixed(kind.clone()),
                ..Default::default()
            });
            let report = solver.solve::<f64>(&jobs);
            assert!(report.all_solved(), "{kind:?} w={workers}");
            assert_eq!(report.results.len(), 64);
            for (r, (status, objective)) in report.results.iter().zip(&baseline) {
                let sol = r.outcome.solution().expect("no panics in this batch");
                assert_eq!(sol.status, *status, "{kind:?} w={workers} job {}", r.index);
                assert!(
                    (sol.objective - objective).abs() < 1e-9,
                    "{kind:?} w={workers} job {}: batch {} vs sequential {}",
                    r.index,
                    sol.objective,
                    objective
                );
            }
        }
    }
}

/// Infeasible / unbounded / degenerate jobs are *answers*: a mixed batch
/// completes with the right per-job status on every worker count.
#[test]
fn mixed_outcome_batch_reports_per_job_statuses() {
    let jobs = vec![
        fixtures::wyndor().0,
        fixtures::infeasible(),
        fixtures::unbounded(),
        generator::klee_minty(5),
        fixtures::degenerate().0,
        fixtures::two_phase().0,
    ];
    let expected = [
        Status::Optimal,
        Status::Infeasible,
        Status::Unbounded,
        Status::Optimal,
        Status::Optimal,
        Status::Optimal,
    ];
    for workers in [1usize, 3, 8] {
        let report = BatchSolver::new(BatchOptions {
            workers,
            ..Default::default()
        })
        .solve::<f64>(&jobs);
        assert!(report.all_solved(), "w={workers}");
        for (r, want) in report.results.iter().zip(&expected) {
            let sol = r.outcome.solution().unwrap();
            assert_eq!(sol.status, *want, "w={workers} job {}", r.index);
        }
        // Klee–Minty optimum is known in closed form.
        let km = report.results[3].outcome.solution().unwrap();
        assert!((km.objective - generator::klee_minty_optimum(5)).abs() < 1e-6);
    }
}

/// A job whose solve panics (malformed model) is caught and reported; every
/// other job in the batch still solves, on every backend and worker count.
#[test]
fn panicking_job_does_not_poison_the_pool() {
    for kind in backends() {
        for workers in [1usize, 4] {
            let mut jobs = generator::batch_dense(12, 6, 8, 77);
            jobs.insert(5, fixtures::poisoned());
            let solver = BatchSolver::new(BatchOptions {
                workers,
                policy: PlacementPolicy::Fixed(kind.clone()),
                ..Default::default()
            });
            let report = solver.solve::<f64>(&jobs);
            assert_eq!(report.stats.jobs, 13, "{kind:?} w={workers}");
            assert_eq!(report.stats.panicked, 1);
            assert_eq!(report.stats.solved, 12);
            assert!(!report.all_solved());
            match &report.results[5].outcome {
                JobOutcome::Panicked(msg) => {
                    assert!(msg.contains("standardize"), "unexpected payload: {msg}")
                }
                other => panic!("job 5 should panic, got {other:?}"),
            }
            for (i, r) in report.results.iter().enumerate() {
                if i != 5 {
                    assert_eq!(
                        r.outcome.solution().map(|s| s.status),
                        Some(Status::Optimal),
                        "{kind:?} w={workers} job {i}"
                    );
                }
            }
        }
    }
}

/// Streams on one shared simulated GPU give the same answers as a dedicated
/// device per solve, and the shared device's aggregate counters account for
/// every retired solve.
#[test]
fn shared_gpu_streams_match_dedicated_device() {
    let jobs = generator::batch_dense(16, 8, 10, 3000);
    let baseline = sequential(&jobs, &BackendKind::GpuDense(DeviceSpec::gtx280()));

    let device = Arc::new(Gpu::new(DeviceSpec::gtx280()));
    let solver = BatchSolver::new(BatchOptions {
        workers: 4,
        policy: PlacementPolicy::Fixed(BackendKind::GpuShared(Arc::clone(&device))),
        ..Default::default()
    });
    let report = solver.solve::<f64>(&jobs);
    assert!(report.all_solved());
    for (r, (status, objective)) in report.results.iter().zip(&baseline) {
        let sol = r.outcome.solution().unwrap();
        assert_eq!(sol.status, *status);
        assert!((sol.objective - objective).abs() < 1e-9, "job {}", r.index);
    }
    // Every solve ran as one stream of the shared card and was folded back.
    let agg = device.counters();
    assert_eq!(agg.streams_retired, 16);
    assert!(agg.kernels_launched > 0);
}

/// The size-threshold policy routes jobs to both sides of the crossover and
/// the report's per-backend tallies add up.
#[test]
fn size_threshold_policy_splits_batch_and_tallies() {
    let jobs = generator::batch_mixed_sizes(12, &[(4, 6), (16, 20)], 500);
    let policy = PlacementPolicy::size_threshold(
        10,
        BackendKind::CpuDense,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    );
    let report = BatchSolver::new(BatchOptions {
        workers: 4,
        policy,
        ..Default::default()
    })
    .solve::<f64>(&jobs);
    assert!(report.all_solved());
    let cpu = report.stats.per_backend["cpu-dense"];
    let gpu = report.stats.per_backend["gpu-dense"];
    assert_eq!(cpu.jobs, 6);
    assert_eq!(gpu.jobs, 6);
    for r in &report.results {
        let want = if r.index % 2 == 0 {
            "cpu-dense"
        } else {
            "gpu-dense"
        };
        assert_eq!(r.backend, want, "job {}", r.index);
    }
    let util = report.stats.utilization("cpu-dense") + report.stats.utilization("gpu-dense");
    assert!((util - 1.0).abs() < 1e-12);
}

/// Satellite regression (counter single-counting): when quarantine re-places
/// jobs off a benched backend, every job is still solved and tallied exactly
/// once — per-backend job counts sum to the batch size, and the aggregate
/// fault/retry/degradation counters equal the per-job sums (no double count
/// from the re-placement path).
#[test]
fn quarantine_replacement_counts_each_job_exactly_once() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let gpu = Arc::new(Gpu::new(DeviceSpec::gtx280()));
    let jobs = generator::batch_dense(8, 6, 8, 4100);
    let report = BatchSolver::new(BatchOptions {
        workers: 1,
        policy: PlacementPolicy::Fixed(BackendKind::GpuShared(gpu)),
        resilience: Some(gplex::ResilienceOptions {
            // Certain faults: the shared device is benched after 2 jobs and
            // the remaining 6 are re-placed onto the CPU.
            faults: Some(gpu_sim::FaultConfig::uniform(5, 1.0)),
            quarantine_after: 2,
            ..Default::default()
        }),
        ..Default::default()
    })
    .solve::<f64>(&jobs);
    std::panic::set_hook(prev);

    assert!(report.all_solved());
    let per_backend_jobs: usize = report.stats.per_backend.values().map(|t| t.jobs).sum();
    assert_eq!(per_backend_jobs, report.stats.jobs, "each job tallied once");
    let fault_sum: u64 = report.results.iter().map(|r| r.faults).sum();
    let retry_sum: usize = report.results.iter().map(|r| r.retries).sum();
    let degrade_sum: usize = report.results.iter().map(|r| r.degradations).sum();
    assert_eq!(report.stats.device_faults, fault_sum);
    assert_eq!(report.stats.retries, retry_sum);
    assert_eq!(report.stats.degradations, degrade_sum);
    // The re-placed (post-quarantine) jobs solved exactly once, fault-free.
    for r in &report.results[2..] {
        assert_eq!(r.faults, 0, "job {}", r.index);
        assert_eq!(r.retries, 0, "job {}", r.index);
    }
}

/// Satellite regression (utilization denominators): a job that panics
/// contributes zero *simulated* time but real host occupancy. The sim-time
/// `utilization` reports 0 for a backend that only ran doomed jobs;
/// `active_utilization` (per-backend active wall time) must still charge
/// the time where it was spent.
#[test]
fn panicked_jobs_still_occupy_their_backend_in_active_utilization() {
    let jobs = vec![fixtures::poisoned()];
    let report = BatchSolver::new(BatchOptions::default()).solve::<f64>(&jobs);
    assert_eq!(report.stats.panicked, 1);
    let tally = report.stats.per_backend["cpu-dense"];
    assert_eq!(tally.sim_time, gpu_sim::SimTime::ZERO);
    assert!(
        tally.wall_seconds > 0.0,
        "a panicked job still occupied the backend"
    );
    // Pre-fix: no per-backend active time existed, so the only occupancy
    // signal (sim-time utilization) reads 0 despite real host occupancy.
    assert_eq!(report.stats.utilization("cpu-dense"), 0.0);
    assert!((report.stats.active_utilization("cpu-dense") - 1.0).abs() < 1e-12);
}

/// Per-backend active wall time partitions the batch across backends and is
/// consistent with the per-job records.
#[test]
fn per_backend_active_time_matches_job_records() {
    let jobs = generator::batch_mixed_sizes(12, &[(4, 6), (16, 20)], 500);
    let policy = PlacementPolicy::size_threshold(
        10,
        BackendKind::CpuDense,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    );
    let report = BatchSolver::new(BatchOptions {
        workers: 2,
        policy,
        ..Default::default()
    })
    .solve::<f64>(&jobs);
    assert!(report.all_solved());
    for (label, tally) in &report.stats.per_backend {
        let job_sum: f64 = report
            .results
            .iter()
            .filter(|r| r.backend == *label)
            .map(|r| r.wall_seconds)
            .sum();
        assert!(
            (tally.wall_seconds - job_sum).abs() < 1e-12,
            "{label}: tally {} vs job sum {}",
            tally.wall_seconds,
            job_sum
        );
    }
    let share_sum =
        report.stats.active_utilization("cpu-dense") + report.stats.active_utilization("gpu-dense");
    assert!((share_sum - 1.0).abs() < 1e-12);
}
