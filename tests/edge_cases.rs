//! Edge cases and failure-injection tests across the stack.

use gplex::{solve, solve_on, BackendKind, SolverOptions, Status};
use gpu_sim::DeviceSpec;
use lp::{LinearProgram, Rel, Sense};

fn raw_opts() -> SolverOptions {
    SolverOptions {
        presolve: false,
        scale: false,
        ..Default::default()
    }
}

#[test]
fn no_constraints_nonneg_costs_is_trivially_optimal() {
    // min x + 2y, x,y ≥ 0 — optimum 0 at the origin; no rows at all.
    let mut model = LinearProgram::new("trivial");
    model.add_var_nonneg("x", 1.0);
    model.add_var_nonneg("y", 2.0);
    for kind in [
        BackendKind::CpuDense,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    ] {
        let sol = solve_on::<f64>(&model, &raw_opts(), &kind);
        assert_eq!(sol.status, Status::Optimal, "{kind:?}");
        assert_eq!(sol.objective, 0.0);
        assert_eq!(sol.x, vec![0.0, 0.0]);
    }
}

#[test]
fn no_constraints_negative_cost_is_unbounded() {
    let mut model = LinearProgram::new("free-fall");
    model.add_var_nonneg("x", -1.0);
    for kind in [
        BackendKind::CpuDense,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    ] {
        let sol = solve_on::<f64>(&model, &raw_opts(), &kind);
        assert_eq!(sol.status, Status::Unbounded, "{kind:?}");
    }
    // Presolve also catches it, with a reason.
    let sol = solve::<f64>(&model, &SolverOptions::default());
    assert_eq!(sol.status, Status::Unbounded);
    assert!(sol.reason.is_some());
}

#[test]
fn single_variable_single_constraint() {
    let mut model = LinearProgram::new("tiny").with_sense(Sense::Max);
    let x = model.add_var_nonneg("x", 1.0);
    model.add_constraint("cap", &[(x, 2.0)], Rel::Le, 10.0);
    let sol = solve::<f64>(&model, &raw_opts());
    assert_eq!(sol.status, Status::Optimal);
    assert_eq!(sol.objective, 5.0);
}

#[test]
fn equality_only_system_with_unique_point() {
    // x + y = 3, x − y = 1 → (2, 1); objective irrelevant to feasibility.
    let mut model = LinearProgram::new("eq-only");
    let x = model.add_var_nonneg("x", 1.0);
    let y = model.add_var_nonneg("y", 1.0);
    model.add_constraint("sum", &[(x, 1.0), (y, 1.0)], Rel::Eq, 3.0);
    model.add_constraint("diff", &[(x, 1.0), (y, -1.0)], Rel::Eq, 1.0);
    for kind in [
        BackendKind::CpuDense,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    ] {
        let sol = solve_on::<f64>(&model, &raw_opts(), &kind);
        assert_eq!(sol.status, Status::Optimal, "{kind:?}");
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
        assert!((sol.x[1] - 1.0).abs() < 1e-8);
        assert!((sol.objective - 3.0).abs() < 1e-8);
    }
}

#[test]
fn redundant_equalities_leave_artificial_in_basis_harmlessly() {
    // Same row twice: rank deficiency guarantees a leftover artificial.
    let mut model = LinearProgram::new("redundant");
    let x = model.add_var_nonneg("x", 1.0);
    let y = model.add_var_nonneg("y", 2.0);
    model.add_constraint("r1", &[(x, 1.0), (y, 1.0)], Rel::Eq, 4.0);
    model.add_constraint("r2", &[(x, 2.0), (y, 2.0)], Rel::Eq, 8.0);
    for kind in [
        BackendKind::CpuDense,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    ] {
        let sol = solve_on::<f64>(&model, &raw_opts(), &kind);
        assert_eq!(sol.status, Status::Optimal, "{kind:?}");
        // min x + 2y on x + y = 4 → all weight on x.
        assert!(
            (sol.objective - 4.0).abs() < 1e-8,
            "{kind:?}: {}",
            sol.objective
        );
        assert!((sol.x[0] - 4.0).abs() < 1e-8);
    }
}

#[test]
fn conflicting_equalities_are_infeasible() {
    let mut model = LinearProgram::new("conflict");
    let x = model.add_var_nonneg("x", 1.0);
    let y = model.add_var_nonneg("y", 1.0);
    model.add_constraint("r1", &[(x, 1.0), (y, 1.0)], Rel::Eq, 4.0);
    model.add_constraint("r2", &[(x, 1.0), (y, 1.0)], Rel::Eq, 5.0);
    let sol = solve::<f64>(&model, &raw_opts());
    assert_eq!(sol.status, Status::Infeasible);
}

#[test]
fn zero_rhs_degenerate_start_still_solves() {
    // Every rhs zero: the origin is the only feasible point of the ≤ rows
    // plus an equality pinning x = y.
    let mut model = LinearProgram::new("zero-rhs").with_sense(Sense::Max);
    let x = model.add_var_nonneg("x", 1.0);
    let y = model.add_var_nonneg("y", -1.0);
    model.add_constraint("r1", &[(x, 1.0), (y, -1.0)], Rel::Le, 0.0);
    model.add_constraint("r2", &[(x, -1.0), (y, 1.0)], Rel::Le, 0.0);
    model.add_constraint("cap", &[(x, 1.0)], Rel::Le, 7.0);
    let sol = solve::<f64>(&model, &raw_opts());
    assert_eq!(sol.status, Status::Optimal);
    // x = y everywhere feasible → objective x − y = 0.
    assert!(sol.objective.abs() < 1e-9);
}

#[test]
fn iteration_limit_in_phase_one_is_reported() {
    let mut model = LinearProgram::new("limited");
    let x = model.add_var_nonneg("x", 1.0);
    let y = model.add_var_nonneg("y", 1.0);
    model.add_constraint("r", &[(x, 1.0), (y, 2.0)], Rel::Ge, 4.0);
    let opts = SolverOptions {
        max_iterations: Some(0),
        ..raw_opts()
    };
    let sol = solve::<f64>(&model, &opts);
    assert_eq!(sol.status, Status::IterationLimit);
}

#[test]
fn huge_coefficient_spread_is_tamed_by_scaling() {
    // 1e8 spread: f32 without scaling struggles; with scaling it must work.
    let mut model = LinearProgram::new("spread").with_sense(Sense::Max);
    let x = model.add_var_nonneg("x", 1e6);
    let y = model.add_var_nonneg("y", 1.0);
    model.add_constraint("r1", &[(x, 1e7), (y, 1.0)], Rel::Le, 2e7);
    model.add_constraint("r2", &[(x, 1.0), (y, 1e-2)], Rel::Le, 4.0);
    let opts = SolverOptions {
        scale: true,
        presolve: false,
        ..Default::default()
    };
    let sol64 = solve::<f64>(&model, &opts);
    let sol32 = solve::<f32>(&model, &opts);
    assert_eq!(sol64.status, Status::Optimal);
    assert_eq!(sol32.status, Status::Optimal);
    assert!(
        (sol32.objective - sol64.objective).abs() / sol64.objective.abs() < 1e-3,
        "f32 {} vs f64 {}",
        sol32.objective,
        sol64.objective
    );
}

#[test]
fn duals_survive_presolve_rewrites() {
    // Presolve fixes x, turns the row into a bound on y and solves the
    // whole model away; the row's dual must still come back (regression:
    // any presolve reduction used to withhold duals entirely).
    let mut model = LinearProgram::new("fixed-var");
    let x = model.add_var("x", 2.0, 2.0, 1.0);
    let y = model.add_var_nonneg("y", 1.0);
    model.add_constraint("r", &[(x, 1.0), (y, 1.0)], Rel::Ge, 5.0);
    let with = solve::<f64>(&model, &SolverOptions::default());
    assert_eq!(with.status, Status::Optimal);
    let duals = with.duals.as_ref().expect("duals survive presolve");
    // y = 3 rides the row, so the row carries y's whole reduced cost.
    assert!((duals[0] - 1.0).abs() < 1e-9, "duals {duals:?}");
    // And they agree with the untouched-pipeline duals.
    let raw = solve::<f64>(&model, &raw_opts());
    assert_eq!(raw.duals.as_ref().map(|d| d.len()), Some(duals.len()));
    for (a, b) in duals.iter().zip(raw.duals.as_ref().unwrap()) {
        assert!((a - b).abs() < 1e-9, "{duals:?} vs {:?}", raw.duals);
    }
}

#[test]
fn wyndor_duals_recover_through_presolve() {
    // Wyndor's two singleton rows (x₁ ≤ 4, 2x₂ ≤ 12) presolve into bounds;
    // the default pipeline must still report the textbook shadow prices
    // [0, 1.5, 1] — the slack first row earns 0, the binding second row
    // earns 3/2 even though the reduced model never saw it.
    let (model, _) = lp::generator::fixtures::wyndor();
    let sol = solve::<f64>(&model, &SolverOptions::default());
    assert_eq!(sol.status, Status::Optimal);
    let duals = sol.duals.as_ref().expect("duals survive presolve");
    let expected = [0.0, 1.5, 1.0];
    assert_eq!(duals.len(), expected.len());
    for (d, e) in duals.iter().zip(expected) {
        assert!((d - e).abs() < 1e-9, "duals {duals:?}");
    }
    // Same multipliers as the no-presolve pipeline.
    let raw = solve::<f64>(&model, &raw_opts());
    for (a, b) in duals.iter().zip(raw.duals.as_ref().unwrap()) {
        assert!((a - b).abs() < 1e-9, "{duals:?} vs {:?}", raw.duals);
    }
}

#[test]
fn badly_scaled_duals_recover_through_presolve_and_scaling() {
    // min 2a + 3b over a+2b ≥ 3 (×1e6), a ≤ 10, a+b = 4 (×1e-3):
    // optimum a = 4, b = 0, and only the equality row works — its written
    // dual is 2/1e-3 = 2000. The singleton row a ≤ 10 presolves away slack
    // (dual 0), and geometric-mean scaling must not leak into any of them.
    let mut model = LinearProgram::new("scaled-mixed");
    let a = model.add_var_nonneg("a", 2.0);
    let b = model.add_var_nonneg("b", 3.0);
    model.add_constraint("r1", &[(a, 1.0e6), (b, 2.0e6)], Rel::Ge, 3.0e6);
    model.add_constraint("r2", &[(a, 1.0)], Rel::Le, 10.0);
    model.add_constraint("r3", &[(a, 1.0e-3), (b, 1.0e-3)], Rel::Eq, 4.0e-3);
    let sol = solve::<f64>(&model, &SolverOptions::default());
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective - 8.0).abs() < 1e-8);
    let duals = sol.duals.as_ref().expect("duals survive presolve");
    let expected = [0.0, 0.0, 2000.0];
    assert_eq!(duals.len(), expected.len());
    for (d, e) in duals.iter().zip(expected) {
        assert!((d - e).abs() < 1e-6 * (1.0 + e.abs()), "duals {duals:?}");
    }
}

#[test]
fn gpu_and_cpu_agree_on_a_wide_problem() {
    // n ≫ m — the revised method's favorite shape.
    let model = lp::generator::dense_random(8, 200, 77);
    let c = solve_on::<f64>(&model, &raw_opts(), &BackendKind::CpuDense);
    let g = solve_on::<f64>(
        &model,
        &raw_opts(),
        &BackendKind::GpuDense(DeviceSpec::gtx280()),
    );
    assert_eq!(c.status, Status::Optimal);
    assert_eq!(g.status, Status::Optimal);
    assert!((c.objective - g.objective).abs() < 1e-8);
}

#[test]
fn tall_problem_more_rows_than_columns() {
    let model = lp::generator::dense_random(60, 12, 5);
    let sol = solve::<f64>(&model, &raw_opts());
    assert_eq!(sol.status, Status::Optimal);
    assert!(model.check_feasible(&sol.x, 1e-7).is_none());
}
