//! The shipped sample model files must parse and solve to their documented
//! optima — keeps `data/` and the examples honest.

use gplex::{solve, solve_on, BackendKind, SolverOptions, Status};
use gpu_sim::DeviceSpec;

/// The three standard backends, for golden cross-backend regressions.
fn all_backends() -> Vec<BackendKind> {
    vec![
        BackendKind::CpuDense,
        BackendKind::CpuSparse,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    ]
}

#[test]
fn sample_mps_solves_to_documented_optimum() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.mps"))
        .expect("sample.mps present");
    let model = lp::mps::parse(&text).expect("sample.mps parses");
    let sol = solve::<f64>(&model, &SolverOptions::default());
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective + 36.0).abs() < 1e-9, "{}", sol.objective);
    let doors = model.var_by_name("DOORS").unwrap();
    let windows = model.var_by_name("WINDOWS").unwrap();
    assert!((sol.x[doors.0] - 2.0).abs() < 1e-9);
    assert!((sol.x[windows.0] - 6.0).abs() < 1e-9);
}

#[test]
fn sample_lp_solves_to_documented_optimum() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.lp"))
        .expect("sample.lp present");
    let model = lp::lpformat::parse(&text).expect("sample.lp parses");
    let sol = solve::<f64>(&model, &SolverOptions::default());
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective - 13.0).abs() < 1e-9, "{}", sol.objective);
}

/// Golden regression: the shipped sample files must solve to their pinned
/// objectives on *every* backend, not just the default CPU path. The pins
/// are the documented optima (sample.mps is Wyndor stated as minimization,
/// objective −36; sample.lp is the production fixture, objective 13).
#[test]
fn sample_files_pin_objectives_on_all_backends() {
    let mps = lp::mps::parse(
        &std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.mps"))
            .expect("sample.mps present"),
    )
    .expect("sample.mps parses");
    let lpf = lp::lpformat::parse(
        &std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.lp"))
            .expect("sample.lp present"),
    )
    .expect("sample.lp parses");
    for kind in all_backends() {
        let a = solve_on::<f64>(&mps, &SolverOptions::default(), &kind);
        assert_eq!(a.status, Status::Optimal, "sample.mps on {kind:?}");
        assert!(
            (a.objective + 36.0).abs() < 1e-9,
            "sample.mps on {kind:?}: {}",
            a.objective
        );

        let b = solve_on::<f64>(&lpf, &SolverOptions::default(), &kind);
        assert_eq!(b.status, Status::Optimal, "sample.lp on {kind:?}");
        assert!(
            (b.objective - 13.0).abs() < 1e-9,
            "sample.lp on {kind:?}: {}",
            b.objective
        );
    }
}

#[test]
fn lp_and_mps_writers_cross_round_trip() {
    // model → LP text → model → MPS text → model keeps the same optimum.
    let original = lp::generator::dense_random(7, 10, 31);
    let via_lp = lp::lpformat::parse(&lp::lpformat::write(&original)).expect("lp round trip");
    let via_both = lp::mps::parse(&lp::mps::write(&via_lp)).expect("mps round trip");
    let a = solve::<f64>(&original, &SolverOptions::default());
    let b = solve::<f64>(&via_both, &SolverOptions::default());
    assert_eq!(a.status, Status::Optimal);
    assert_eq!(b.status, Status::Optimal);
    assert!((a.objective - b.objective).abs() < 1e-9);
}
