//! The shipped sample model files must parse and solve to their documented
//! optima — keeps `data/` and the examples honest.

use gplex::{solve, SolverOptions, Status};

#[test]
fn sample_mps_solves_to_documented_optimum() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.mps"))
        .expect("sample.mps present");
    let model = lp::mps::parse(&text).expect("sample.mps parses");
    let sol = solve::<f64>(&model, &SolverOptions::default());
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective + 36.0).abs() < 1e-9, "{}", sol.objective);
    let doors = model.var_by_name("DOORS").unwrap();
    let windows = model.var_by_name("WINDOWS").unwrap();
    assert!((sol.x[doors.0] - 2.0).abs() < 1e-9);
    assert!((sol.x[windows.0] - 6.0).abs() < 1e-9);
}

#[test]
fn sample_lp_solves_to_documented_optimum() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.lp"))
        .expect("sample.lp present");
    let model = lp::lpformat::parse(&text).expect("sample.lp parses");
    let sol = solve::<f64>(&model, &SolverOptions::default());
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective - 13.0).abs() < 1e-9, "{}", sol.objective);
}

#[test]
fn lp_and_mps_writers_cross_round_trip() {
    // model → LP text → model → MPS text → model keeps the same optimum.
    let original = lp::generator::dense_random(7, 10, 31);
    let via_lp = lp::lpformat::parse(&lp::lpformat::write(&original)).expect("lp round trip");
    let via_both = lp::mps::parse(&lp::mps::write(&via_lp)).expect("mps round trip");
    let a = solve::<f64>(&original, &SolverOptions::default());
    let b = solve::<f64>(&via_both, &SolverOptions::default());
    assert_eq!(a.status, Status::Optimal);
    assert_eq!(b.status, Status::Optimal);
    assert!((a.objective - b.objective).abs() < 1e-9);
}
