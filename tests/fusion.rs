//! Fused-launch acceptance tests (experiment F6): fusing the per-iteration
//! kernel chains changes *accounting only*. The pivot path, the solution
//! bits, and the trace structure must be bitwise-identical between the
//! fused and unfused modes; the simulated time must be strictly lower with
//! fusion on; and the step spans must still cover (essentially) the whole
//! device clock.

use gplex::backends::GpuDenseBackend;
use gplex::trace::TraceRecorder;
use gplex::{try_solve_standard_recorded, BackendKind, RevisedSimplex, SolverOptions, Status};
use gpu_sim::{DeviceSpec, Gpu};
use lp::generator;
use lp::StandardForm;

fn opts(fuse: bool) -> SolverOptions {
    SolverOptions {
        presolve: false,
        scale: false,
        fuse_launches: fuse,
        ..Default::default()
    }
}

/// The T1 grid shape (square dense_random instances, two seeds per size),
/// scaled down so the debug-mode suite stays fast.
const GRID: [(usize, u64); 6] = [(32, 1), (32, 7), (64, 1), (64, 7), (96, 1), (96, 7)];

/// Drive one solve on a dedicated device, returning the result plus the
/// device handle's final counters/clock (post-construction ops only).
fn gpu_solve(
    sf: &StandardForm<f64>,
    fuse: bool,
) -> (gplex::StdResult<f64>, gpu_sim::Counters, TraceRecorder) {
    let gpu = Gpu::new(DeviceSpec::gtx280());
    let n_active = sf.num_cols() - sf.num_artificials;
    let mut be = GpuDenseBackend::try_new(&gpu, &sf.a, &sf.b, n_active, &sf.basis0).unwrap();
    be.set_fuse_launches(fuse);
    // Measure the solve, not the (identical-in-both-modes) setup uploads.
    gpu.reset_counters();
    let mut rec = TraceRecorder::with_events(1 << 16);
    let res = RevisedSimplex::with_recorder(&mut be, sf, &opts(fuse), &mut rec)
        .try_solve()
        .unwrap();
    (res, gpu.counters(), rec)
}

/// (a) Bitwise parity: same pivot fingerprint, same structural trace
/// fingerprint, same solution bits, fused vs unfused, across the grid.
#[test]
fn fused_and_unfused_walk_identical_pivot_paths() {
    for &(m, seed) in &GRID {
        let model = generator::dense_random(m, m, seed);
        let sf = StandardForm::<f64>::from_lp(&model).unwrap();
        let kind = BackendKind::GpuDense(DeviceSpec::gtx280());

        let mut rec_f = TraceRecorder::with_events(1 << 16);
        let fused =
            try_solve_standard_recorded::<f64, _>(&sf, &opts(true), &kind, &mut rec_f).unwrap();
        let mut rec_u = TraceRecorder::with_events(1 << 16);
        let unfused =
            try_solve_standard_recorded::<f64, _>(&sf, &opts(false), &kind, &mut rec_u).unwrap();

        assert_eq!(fused.status, Status::Optimal, "m={m} seed={seed}");
        assert_eq!(fused.status, unfused.status, "m={m} seed={seed}");
        assert_eq!(
            fused.stats.iterations, unfused.stats.iterations,
            "m={m} seed={seed}: iteration counts diverge"
        );
        assert_ne!(fused.stats.pivot_fingerprint, 0, "pivots were recorded");
        assert_eq!(
            fused.stats.pivot_fingerprint, unfused.stats.pivot_fingerprint,
            "m={m} seed={seed}: pivot sequences diverge"
        );
        assert_eq!(
            rec_f.events.structural_fingerprint(),
            rec_u.events.structural_fingerprint(),
            "m={m} seed={seed}: trace structure diverges"
        );
        assert_eq!(
            fused.z_std.to_bits(),
            unfused.z_std.to_bits(),
            "m={m} seed={seed}: objective bits diverge"
        );
        assert_eq!(fused.x_std.len(), unfused.x_std.len());
        for (i, (a, b)) in fused.x_std.iter().zip(&unfused.x_std).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "m={m} seed={seed}: x_std[{i}] bits diverge"
            );
        }
    }
}

/// Within one mode the *full* (timing-sensitive) trace fingerprint is
/// reproducible run-to-run — fusion did not introduce nondeterminism.
#[test]
fn trace_fingerprints_are_deterministic_within_each_mode() {
    let model = generator::dense_random(48, 48, 5);
    let sf = StandardForm::<f64>::from_lp(&model).unwrap();
    for fuse in [true, false] {
        let (_, _, rec1) = gpu_solve(&sf, fuse);
        let (_, _, rec2) = gpu_solve(&sf, fuse);
        assert_eq!(rec1.events.len(), rec2.events.len(), "fuse={fuse}");
        assert_eq!(
            rec1.events.fingerprint(),
            rec2.events.fingerprint(),
            "fuse={fuse}: repeat solves must be bitwise identical"
        );
    }
}

/// (b) Fusion strictly lowers simulated time on every small square
/// instance (m = n well under the CPU/GPU crossover), and strictly lowers
/// the launch and D2H-transfer counts that caused the overhead.
#[test]
fn fusion_strictly_reduces_simulated_time_for_small_lps() {
    for m in [16usize, 48, 96, 160] {
        let model = generator::dense_random(m, m, 11);
        let sf = StandardForm::<f64>::from_lp(&model).unwrap();
        let (res_f, c_f, _) = gpu_solve(&sf, true);
        let (res_u, c_u, _) = gpu_solve(&sf, false);
        assert_eq!(res_f.status, Status::Optimal);
        assert_eq!(res_f.stats.iterations, res_u.stats.iterations, "m={m}");
        assert!(
            c_f.elapsed < c_u.elapsed,
            "m={m}: fused {} must beat unfused {}",
            c_f.elapsed,
            c_u.elapsed
        );
        assert!(
            c_f.kernels_launched < c_u.kernels_launched,
            "m={m}: fused {} launches vs unfused {}",
            c_f.kernels_launched,
            c_u.kernels_launched
        );
        assert!(
            c_f.d2h_count < c_u.d2h_count,
            "m={m}: fused {} D2H transfers vs unfused {}",
            c_f.d2h_count,
            c_u.d2h_count
        );
        assert!(c_f.fused_groups > 0, "m={m}: fusion actually engaged");
        assert_eq!(c_u.fused_groups, 0, "m={m}: ablation actually disabled");
    }
}

/// (c) With fusion on, the step spans still attribute ≥ 99.5% of the
/// device clock — fused groups charge inside the span that issued them,
/// so no time leaks out of the observability ledger.
#[test]
fn fused_span_coverage_stays_above_99_5_percent() {
    for &(m, seed) in &[(48usize, 3u64), (96, 5)] {
        let model = generator::dense_random(m, m, seed);
        let sf = StandardForm::<f64>::from_lp(&model).unwrap();
        let (res, counters, rec) = gpu_solve(&sf, true);
        assert_eq!(res.status, Status::Optimal);
        let clock = counters.elapsed.as_nanos();
        let spans = rec.timings.total_time().as_nanos();
        assert!(clock > 0.0);
        let coverage = spans / clock;
        assert!(
            coverage >= 0.995,
            "m={m} seed={seed}: span coverage {coverage:.4} below 99.5%"
        );
        assert!(
            coverage <= 1.0 + 1e-9,
            "m={m} seed={seed}: spans exceed the device clock ({coverage:.4})"
        );
    }
}
