//! Observability integration tests: step tracing, the metrics registry,
//! deadline enforcement between steps, and the solver-accounting
//! invariants the bugfix sweep pinned down.

use std::time::{Duration, Instant};

use gplex::backends::CpuDenseBackend;
use gplex::trace::{StepKind, TraceRecorder};
use gplex::{
    try_solve_standard, try_solve_standard_recorded, Backend, BackendError, BackendKind,
    MetricValue, MetricsRegistry, RatioOutcome, RevisedSimplex, SolveError, SolverOptions, Status,
    Step,
};
use gpu_sim::{DeviceSpec, SimTime};
use lp::generator::{self, fixtures};
use lp::StandardForm;

fn backends() -> Vec<BackendKind> {
    vec![
        BackendKind::CpuDense,
        BackendKind::CpuSparse,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    ]
}

fn no_pipeline() -> SolverOptions {
    SolverOptions {
        presolve: false,
        scale: false,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Satellite: deadline checks between backend steps, not once per iteration.
// ---------------------------------------------------------------------------

/// A backend wrapper that makes each step take real host time: fast setup,
/// slow per-iteration ops, and one pathologically slow update. With the
/// deadline only checked at the top of the iteration loop, a timeout set
/// below one iteration's cost overshoots by the whole iteration (including
/// the slow update); with per-step checks it fires right after pricing.
struct SlowBackend<'a> {
    inner: &'a mut CpuDenseBackend<f64>,
    step_sleep: Duration,
    update_sleep: Duration,
}

impl Backend<f64> for SlowBackend<'_> {
    fn name(&self) -> &'static str {
        "slow-test"
    }
    fn clock(&self) -> SimTime {
        self.inner.clock()
    }
    fn m(&self) -> usize {
        self.inner.m()
    }
    fn n_active(&self) -> usize {
        self.inner.n_active()
    }
    fn set_phase_costs(&mut self, c: &[f64]) -> Result<(), BackendError> {
        self.inner.set_phase_costs(c)
    }
    fn set_basic_cost(&mut self, row: usize, cost: f64) -> Result<(), BackendError> {
        self.inner.set_basic_cost(row, cost)
    }
    fn set_basic_col(&mut self, row: usize, col: usize) -> Result<(), BackendError> {
        self.inner.set_basic_col(row, col)
    }
    fn compute_btran(&mut self) -> Result<(), BackendError> {
        std::thread::sleep(self.step_sleep);
        self.inner.compute_btran()
    }
    fn compute_pricing_window(&mut self, start: usize, len: usize) -> Result<(), BackendError> {
        std::thread::sleep(self.step_sleep);
        self.inner.compute_pricing_window(start, len)
    }
    fn entering_dantzig_window(
        &mut self,
        tol: f64,
        start: usize,
        len: usize,
    ) -> Result<Option<(usize, f64)>, BackendError> {
        std::thread::sleep(self.step_sleep);
        self.inner.entering_dantzig_window(tol, start, len)
    }
    fn entering_bland(&mut self, tol: f64) -> Result<Option<(usize, f64)>, BackendError> {
        self.inner.entering_bland(tol)
    }
    fn compute_alpha(&mut self, q: usize) -> Result<(), BackendError> {
        std::thread::sleep(self.step_sleep);
        self.inner.compute_alpha(q)
    }
    fn ratio_test(&mut self, pivot_tol: f64) -> Result<RatioOutcome<f64>, BackendError> {
        std::thread::sleep(self.step_sleep);
        self.inner.ratio_test(pivot_tol)
    }
    fn update(&mut self, p: usize, theta: f64) -> Result<(), BackendError> {
        std::thread::sleep(self.update_sleep);
        self.inner.update(p, theta)
    }
    fn beta(&mut self) -> Result<Vec<f64>, BackendError> {
        self.inner.beta()
    }
    fn objective_now(&mut self) -> Result<f64, BackendError> {
        self.inner.objective_now()
    }
    fn refactorize(&mut self, basis: &[usize]) -> Result<(), BackendError> {
        self.inner.refactorize(basis)
    }
    fn alpha_at(&mut self, i: usize) -> Result<f64, BackendError> {
        self.inner.alpha_at(i)
    }
}

/// Regression: the deadline must fire between steps. Each per-iteration op
/// sleeps 20 ms, the update sleeps 300 ms, and the limit is 50 ms — with
/// per-step checks the solve errors out well before the update runs
/// (≈60–80 ms); the pre-fix loop-top-only check sat through the whole
/// iteration (≥360 ms) first.
#[test]
fn time_limit_fires_between_steps_not_once_per_iteration() {
    let (model, _) = fixtures::wyndor(); // all ≤ rows: slack basis, no phase 1
    let sf = StandardForm::<f64>::from_lp(&model).unwrap();
    assert_eq!(sf.num_artificials, 0, "fixture must skip phase 1");
    let n_active = sf.num_cols() - sf.num_artificials;
    let mut inner = CpuDenseBackend::new(&sf.a, &sf.b, n_active, &sf.basis0);
    let mut be = SlowBackend {
        inner: &mut inner,
        step_sleep: Duration::from_millis(20),
        update_sleep: Duration::from_millis(300),
    };
    let opts = SolverOptions {
        time_limit: Some(0.05),
        ..no_pipeline()
    };
    let wall = Instant::now();
    let res = RevisedSimplex::new(&mut be, &sf, &opts).try_solve();
    let elapsed = wall.elapsed().as_secs_f64();
    match res {
        Err(SolveError::Timeout { limit_seconds, .. }) => {
            assert!((limit_seconds - 0.05).abs() < 1e-12)
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(
        elapsed < 0.2,
        "deadline overshot to {elapsed:.3}s — checked only at the iteration top?"
    );
}

// ---------------------------------------------------------------------------
// Satellite: per-phase counters partition the totals, on every backend.
// ---------------------------------------------------------------------------

#[test]
fn phase_counters_partition_totals_on_every_backend() {
    // Mix of one-phase, two-phase, and degenerate instances.
    let models = vec![
        fixtures::wyndor().0,
        fixtures::two_phase().0,
        fixtures::degenerate().0,
        fixtures::beale_cycling().0,
        generator::transportation(&[30.0, 70.0], &[40.0, 60.0], 3),
        generator::dense_random(12, 16, 9),
    ];
    for kind in backends() {
        for model in &models {
            let sf = StandardForm::<f64>::from_lp(model).unwrap();
            let res = try_solve_standard::<f64>(&sf, &no_pipeline(), &kind).unwrap();
            res.stats
                .check_invariants()
                .unwrap_or_else(|e| panic!("{kind:?} on {}: {e}", model.name));
            assert_eq!(
                res.stats.iterations,
                res.stats.phase1_iterations + res.stats.phase2_iterations(),
                "{kind:?} on {}",
                model.name
            );
        }
    }
    // The suite must exercise both phases somewhere (a split that is
    // trivially all-phase-1 or all-phase-2 would not test the partition).
    let both_phases = models.iter().any(|model| {
        let sf = StandardForm::<f64>::from_lp(model).unwrap();
        let res = try_solve_standard::<f64>(&sf, &no_pipeline(), &BackendKind::CpuDense).unwrap();
        res.stats.phase1_iterations > 0 && res.stats.phase2_iterations() > 0
    });
    assert!(both_phases, "no fixture iterated in both phases");
}

// ---------------------------------------------------------------------------
// Accounting: spans and legacy Step charges cover the whole solve.
// ---------------------------------------------------------------------------

/// On the CPU backend the modeled clock only advances inside charged ops,
/// so after the accounting-gap fixes (phase-1 objective read, artificial
/// guard, terminal β download) the per-step totals must equal the backend
/// clock exactly — nothing the backend did goes unattributed.
#[test]
fn cpu_step_totals_equal_backend_clock() {
    // Two-phase + artificials: exercises every formerly-uncharged path.
    let model = generator::transportation(&[30.0, 70.0], &[40.0, 60.0], 3);
    let sf = StandardForm::<f64>::from_lp(&model).unwrap();
    let n_active = sf.num_cols() - sf.num_artificials;
    let mut be = CpuDenseBackend::new(&sf.a, &sf.b, n_active, &sf.basis0);
    let res = RevisedSimplex::new(&mut be, &sf, &no_pipeline())
        .try_solve()
        .unwrap();
    assert_eq!(res.status, Status::Optimal);
    let clock = be.clock().as_nanos();
    let charged = res.stats.total_time().as_nanos();
    assert!(
        (clock - charged).abs() <= 1e-6 * clock.max(1.0),
        "backend clock {clock} ns vs charged {charged} ns — an op went uncharged"
    );
}

/// The trace sees the same simulated time as the legacy accounting, with
/// the documented kind↔step mapping, and recording does not perturb the
/// solve (identical iterate path and simulated clock with and without a
/// recorder).
#[test]
fn trace_spans_match_legacy_step_accounting() {
    let model = generator::dense_random(16, 24, 5);
    let sf = StandardForm::<f64>::from_lp(&model).unwrap();
    for kind in backends() {
        let plain = try_solve_standard::<f64>(&sf, &no_pipeline(), &kind).unwrap();
        let mut rec = TraceRecorder::new();
        let traced =
            try_solve_standard_recorded::<f64, _>(&sf, &no_pipeline(), &kind, &mut rec).unwrap();

        // Recording is invisible to the solve itself.
        assert_eq!(traced.status, plain.status, "{kind:?}");
        assert_eq!(traced.stats.iterations, plain.stats.iterations, "{kind:?}");
        assert_eq!(
            traced.stats.total_time(),
            plain.stats.total_time(),
            "{kind:?}"
        );

        // Span totals reproduce the Step ledger under the fixed mapping.
        let t = &rec.timings;
        let close = |a: SimTime, b: SimTime| (a.as_nanos() - b.as_nanos()).abs() < 1e-3;
        assert!(close(t.total_time(), traced.stats.total_time()), "{kind:?}");
        assert!(
            close(t.get(StepKind::Ftran).total, traced.stats.time(Step::Ftran)),
            "{kind:?}"
        );
        assert!(
            close(
                t.get(StepKind::RatioTest).total,
                traced.stats.time(Step::RatioTest)
            ),
            "{kind:?}"
        );
        assert!(
            close(
                t.get(StepKind::UpdateBasis).total,
                traced.stats.time(Step::Update)
            ),
            "{kind:?}"
        );
        assert!(
            close(
                t.get(StepKind::Refactorize).total,
                traced.stats.time(Step::Refactor)
            ),
            "{kind:?}"
        );
        assert!(
            close(
                t.get(StepKind::Transfer).total,
                traced.stats.time(Step::Other)
            ),
            "{kind:?}"
        );
        // BTRAN and window pricing split the legacy Pricing charge; the
        // selection scan is charged to Step::Selection but traced under the
        // Pricing kind.
        assert!(
            close(
                t.get(StepKind::Pricing).total + t.get(StepKind::Btran).total,
                traced.stats.time(Step::Pricing) + traced.stats.time(Step::Selection)
            ),
            "{kind:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Determinism and post-mortem traces.
// ---------------------------------------------------------------------------

/// Identical seeds produce bitwise-identical event traces (events carry only
/// deterministic simulated-clock data, never host time).
#[test]
fn same_seed_solves_produce_identical_event_traces() {
    let run = || {
        let model = generator::dense_random(20, 28, 11);
        let sf = StandardForm::<f32>::from_lp(&model).unwrap();
        let mut rec = TraceRecorder::with_events(1 << 14);
        try_solve_standard_recorded::<f32, _>(
            &sf,
            &no_pipeline(),
            &BackendKind::GpuDense(DeviceSpec::gtx280()),
            &mut rec,
        )
        .unwrap();
        rec
    };
    let (a, b) = (run(), run());
    assert!(!a.events.is_empty());
    assert_eq!(a.events.fingerprint(), b.events.fingerprint());
    assert_eq!(a.events.seen(), b.events.seen());
    for (ea, eb) in a.events.iter().zip(b.events.iter()) {
        assert_eq!(ea, eb);
    }
}

/// A solve that dies mid-flight leaves its partial trace with the caller:
/// the recorder outlives the failed solve, so the events up to the failure
/// are available for post-mortem.
#[test]
fn failed_solve_leaves_partial_trace_for_post_mortem() {
    let (model, _) = fixtures::wyndor();
    let sf = StandardForm::<f64>::from_lp(&model).unwrap();
    let n_active = sf.num_cols() - sf.num_artificials;
    let mut inner = CpuDenseBackend::new(&sf.a, &sf.b, n_active, &sf.basis0);
    let mut be = SlowBackend {
        inner: &mut inner,
        step_sleep: Duration::from_millis(20),
        update_sleep: Duration::from_millis(300),
    };
    let opts = SolverOptions {
        time_limit: Some(0.05),
        ..no_pipeline()
    };
    let mut rec = TraceRecorder::with_events(256);
    let res = RevisedSimplex::with_recorder(&mut be, &sf, &opts, &mut rec).try_solve();
    assert!(matches!(res, Err(SolveError::Timeout { .. })));
    assert!(
        rec.timings.spans() > 0,
        "partial trace must survive the error"
    );
    assert!(!rec.events.is_empty());
    // The trace shows pricing ran; the 300 ms update never did.
    assert!(rec.timings.get(StepKind::Btran).count > 0);
    assert_eq!(rec.timings.get(StepKind::UpdateBasis).count, 0);
}

// ---------------------------------------------------------------------------
// Metrics registry over real solves.
// ---------------------------------------------------------------------------

#[test]
fn metrics_snapshot_agrees_with_solve_stats() {
    let model = generator::transportation(&[30.0, 70.0], &[40.0, 60.0], 3);
    let sf = StandardForm::<f64>::from_lp(&model).unwrap();
    let mut rec = TraceRecorder::new();
    let res = try_solve_standard_recorded::<f64, _>(
        &sf,
        &no_pipeline(),
        &BackendKind::CpuDense,
        &mut rec,
    )
    .unwrap();

    let mut reg = MetricsRegistry::new();
    reg.observe_solve(&res.stats);
    reg.observe_timings(&rec.timings);
    let snap = reg.snapshot();

    assert_eq!(
        snap.get("solve.iterations"),
        Some(MetricValue::Counter(res.stats.iterations as u64))
    );
    assert_eq!(
        snap.get("solve.phase1.iterations"),
        Some(MetricValue::Counter(res.stats.phase1_iterations as u64))
    );
    assert_eq!(
        snap.get("solve.phase2.iterations"),
        Some(MetricValue::Counter(res.stats.phase2_iterations() as u64))
    );
    // Per-step counters mirror the trace.
    for kind in StepKind::ALL {
        let name = format!("trace.step.{}.count", kind.name());
        assert_eq!(
            snap.get(&name),
            Some(MetricValue::Counter(rec.timings.get(kind).count)),
            "{name}"
        );
    }
    // Gauge sums match the trace totals.
    let sim_sum: f64 = StepKind::ALL
        .iter()
        .map(
            |k| match snap.get(&format!("trace.step.{}.sim_seconds", k.name())) {
                Some(MetricValue::Gauge(g)) => g,
                other => panic!("missing gauge: {other:?}"),
            },
        )
        .sum();
    assert!((sim_sum - rec.timings.total_time().as_secs_f64()).abs() < 1e-12);
    // Exporters stay in sync with the snapshot.
    let csv = snap.to_csv();
    assert!(csv.lines().count() == snap.len() + 1);
    assert!(snap.to_json().contains("\"solve.iterations\""));
}
