//! Fault-injection acceptance tests: a heavily-faulted batch must drain
//! with zero escaped panics, every job terminal, bit-for-bit CPU answers
//! for degraded jobs, and counters that are a pure function of the seed.

use std::sync::Arc;

use gplex::batch::PlacementPolicy;
use gplex::{
    solve_on, verify, BackendKind, BatchOptions, BatchSolver, ResilienceOptions, SolveError,
    SolverOptions, Status,
};
use gpu_sim::{DeviceSpec, FaultConfig, Gpu};
use lp::generator::{self, fixtures};
use lp::{LinearProgram, StandardForm};

/// The acceptance batch: three shape families interleaved, 64 jobs.
fn mixed_batch(count: usize) -> Vec<LinearProgram> {
    (0..count)
        .map(|i| match i % 3 {
            0 => generator::dense_random(10, 14, i as u64),
            1 => generator::dense_random(16, 12, 4000 + i as u64),
            _ => generator::transportation(&[30.0, 70.0], &[40.0, 60.0], i as u64),
        })
        .collect()
}

fn faulted_options(gpu: Arc<Gpu>, fault_p: f64, quarantine_after: usize) -> BatchOptions {
    BatchOptions {
        workers: 4,
        policy: PlacementPolicy::Fixed(BackendKind::GpuShared(gpu)),
        resilience: Some(ResilienceOptions {
            faults: Some(FaultConfig::uniform(777, fault_p)),
            quarantine_after,
            ..Default::default()
        }),
        ..Default::default()
    }
}

/// Headline acceptance: 64 mixed LPs with faults injected into 25% of GPU
/// ops. The batch drains, no panic escapes the scheduler, every job is
/// terminal, and each job that degraded to the CPU rung reproduces the
/// CPU-only golden objective *bit for bit*.
#[test]
fn faulted_batch_drains_with_terminal_jobs_and_bitwise_cpu_answers() {
    let jobs = mixed_batch(64);
    let gpu = Arc::new(Gpu::new(DeviceSpec::gtx280()));
    // Quarantine off so every job walks its own retry/degradation ladder.
    let report = BatchSolver::new(faulted_options(gpu, 0.25, 0)).solve::<f64>(&jobs);

    assert_eq!(report.results.len(), 64);
    assert_eq!(
        report.stats.panicked, 0,
        "no panic may escape the scheduler"
    );
    assert_eq!(report.stats.failed, 0, "CPU rung always completes");
    assert_eq!(report.stats.solved, 64, "every job is terminal");
    assert!(report.all_solved());
    assert!(
        report.stats.device_faults > 0,
        "25% fault rate must actually fire"
    );
    assert!(
        report.stats.degradations > 0,
        "at this rate jobs must degrade"
    );

    for (i, r) in report.results.iter().enumerate() {
        let sol = r.outcome.solution().expect("terminal solution");
        if r.backend == "cpu-dense" {
            let golden =
                solve_on::<f64>(&jobs[i], &SolverOptions::default(), &BackendKind::CpuDense);
            assert_eq!(sol.status, golden.status, "job {i}");
            assert_eq!(
                sol.objective.to_bits(),
                golden.objective.to_bits(),
                "job {i}: degraded objective must be bitwise the CPU answer"
            );
            for (a, b) in sol.x.iter().zip(&golden.x) {
                assert_eq!(a.to_bits(), b.to_bits(), "job {i}: x mismatch");
            }
        }
    }
}

/// Fault injection is a pure function of the seed: two fresh runs agree on
/// every aggregate and per-job fault/retry/degradation counter.
#[test]
fn fault_counters_are_deterministic_from_seed() {
    let run = || {
        let jobs = mixed_batch(24);
        let gpu = Arc::new(Gpu::new(DeviceSpec::gtx280()));
        let report = BatchSolver::new(faulted_options(gpu, 0.25, 0)).solve::<f64>(&jobs);
        let per_job: Vec<_> = report
            .results
            .iter()
            .map(|r| {
                (
                    r.faults,
                    r.retries,
                    r.degradations,
                    r.backend,
                    r.outcome.status_label().to_string(),
                )
            })
            .collect();
        (
            report.stats.device_faults,
            report.stats.retries,
            report.stats.degradations,
            report.stats.solved,
            per_job,
        )
    };
    assert_eq!(run(), run());
}

/// A per-attempt deadline surfaces as `SolveError::Timeout` with the stable
/// `timeout` tag rather than as a panic or a bogus status.
#[test]
fn deadline_is_enforced_as_timeout_error() {
    let model = generator::dense_random(16, 20, 3);
    let opts = SolverOptions {
        time_limit: Some(0.0),
        ..Default::default()
    };
    match gplex::try_solve::<f64>(&model, &opts) {
        Err(e @ SolveError::Timeout { .. }) => assert_eq!(e.tag(), "timeout"),
        other => panic!("expected Timeout, got {other:?}"),
    }
}

/// An `IterationLimit` best-effort point is never treated as optimal: the
/// honest status sails through `check_solution` uncertified, and forging
/// `Optimal` onto the same point gets rejected — at the model level (the
/// half-finished phase-1 point is infeasible) and at the standard-form
/// level (reduced costs betray suboptimality even for feasible points).
#[test]
fn iteration_limit_best_effort_never_passes_as_optimal() {
    // Phase-1-requiring model stopped after one iteration: the best-effort
    // point still carries artificial infeasibility.
    let (model, _) = fixtures::two_phase();
    let opts = SolverOptions {
        max_iterations: Some(1),
        ..Default::default()
    };
    let mut sol = solve_on::<f64>(&model, &opts, &BackendKind::CpuDense);
    assert_eq!(sol.status, Status::IterationLimit);
    // Honest status: nothing is certified, nothing errors.
    verify::check_solution(&model, &sol, 1e-8).expect("IterationLimit is not certified");
    // Forged status: the same point must not verify as optimal.
    sol.status = Status::Optimal;
    assert!(
        verify::check_solution(&model, &sol, 1e-8).is_err(),
        "forged Optimal on a best-effort point must be rejected"
    );

    // Feasible-but-suboptimal variant (slack start, no phase 1): feasibility
    // alone cannot launder the forged status past the reduced-cost check.
    let model = generator::dense_random(12, 16, 5);
    let sf = StandardForm::<f64>::from_lp(&model).unwrap();
    let raw = SolverOptions {
        presolve: false,
        scale: false,
        max_iterations: Some(1),
        ..Default::default()
    };
    let mut res = gplex::solve_standard::<f64>(&sf, &raw, &BackendKind::CpuDense);
    assert_eq!(res.status, Status::IterationLimit);
    assert_eq!(
        verify::certify_optimal(&sf, &res, 1e-8),
        Err(verify::VerifyError::NotOptimal {
            status: Status::IterationLimit
        })
    );
    res.status = Status::Optimal;
    assert!(
        verify::certify_optimal(&sf, &res, 1e-8).is_err(),
        "one pivot cannot be optimal for this instance"
    );
}

/// `SingularBasis` (and every other status) round-trips through the stable
/// tag used by the batch/bench CSV output.
#[test]
fn singular_basis_round_trips_through_batch_csv_tags() {
    let statuses = [
        Status::Optimal,
        Status::Infeasible,
        Status::Unbounded,
        Status::IterationLimit,
        Status::SingularBasis,
    ];
    // Render a CSV column exactly the way the bench tables do…
    let csv: Vec<String> = statuses.iter().map(|s| s.tag().to_string()).collect();
    assert_eq!(csv[4], "singular");
    // …and parse it back.
    for (s, cell) in statuses.iter().zip(&csv) {
        assert_eq!(
            Status::from_tag(cell),
            Some(*s),
            "tag {cell} must round-trip"
        );
    }
    // Unknown tags (e.g. the batch-only `panicked` label) do not alias.
    assert_eq!(Status::from_tag("panicked"), None);
    assert_eq!(Status::from_tag("failed"), None);
}

/// Degradation preserves answer quality under verification: every solved
/// job of a faulted batch passes the independent checker.
#[test]
fn faulted_batch_solutions_still_verify() {
    let jobs = mixed_batch(12);
    let gpu = Arc::new(Gpu::new(DeviceSpec::gtx280()));
    let report = BatchSolver::new(faulted_options(gpu, 0.25, 0)).solve::<f64>(&jobs);
    assert!(report.all_solved());
    for (i, r) in report.results.iter().enumerate() {
        let sol = r.outcome.solution().unwrap();
        verify::check_solution(&jobs[i], sol, 1e-6).unwrap_or_else(|e| panic!("job {i}: {e}"));
    }
}

/// Regression (setup-fault routing): a device fault injected during the
/// *initial* uploads — warmup 0, every transfer times out, so the very
/// first H2D of `A` fails before any iterate exists — must surface as a
/// reportable [`SolveError::Device`]. The backend constructor used to
/// unwrap that upload, so the solve died as `Panicked` instead.
#[test]
fn setup_fault_surfaces_as_device_error_not_panic() {
    let (model, _) = fixtures::wyndor();
    let opts = SolverOptions {
        faults: Some(FaultConfig {
            transfer_timeout: 1.0,
            ..FaultConfig::off(11)
        }),
        ..Default::default()
    };
    let err =
        gplex::try_solve_on::<f64>(&model, &opts, &BackendKind::GpuDense(DeviceSpec::gtx280()))
            .expect_err("a certain transfer fault cannot produce a solution");
    assert!(
        matches!(err, SolveError::Device(_)),
        "setup fault must be a device error, got: {err}"
    );
}

/// Regression (warm starts × the degradation ladder): a cached basis
/// offered to the placed GPU backend must be *re-supplied* on every rung,
/// not silently dropped when retries exhaust and the job degrades to the
/// dense CPU path. With certain GPU faults, the job lands on `cpu-dense`
/// and still warm-starts — zero iterations from the family's optimal basis.
#[test]
fn degraded_job_keeps_its_warm_start() {
    use gplex::{solve_on_warm, BasisCache, ResilientSolver, WarmContext, WarmStartPolicy};

    let model = generator::dense_random(10, 14, 5);
    let opts = SolverOptions::default();
    let cache = BasisCache::new(4);
    let ctx = WarmContext {
        cache: &cache,
        policy: WarmStartPolicy::Family { tol: 1e-6 },
    };
    // Seed the cache with the model's optimal basis via a cold CPU solve.
    let seed = solve_on_warm::<f64>(&model, &opts, &BackendKind::CpuDense, Some(&ctx));
    assert_eq!(seed.status, Status::Optimal);
    assert_eq!(cache.stats().insertions, 1);

    // p = 1: the GPU rung can never finish; the ladder bottoms out on CPU.
    let solver = ResilientSolver::new(ResilienceOptions {
        faults: Some(FaultConfig::uniform(7, 1.0)),
        ..Default::default()
    });
    let out = solver.solve_job_warm::<f64>(
        3,
        &model,
        &opts,
        &BackendKind::GpuDense(DeviceSpec::gtx280()),
        Some(&ctx),
    );
    let sol = out.result.expect("CPU rung always succeeds");
    assert_eq!(out.final_backend, "cpu-dense");
    assert_eq!(out.degradations, 1);
    assert_eq!(sol.status, Status::Optimal);
    // The fix under test: the CPU rung still saw the cached basis.
    assert_eq!(
        sol.stats.warm_start_attempted, 1,
        "warm start dropped on degradation"
    );
    assert_eq!(sol.stats.warm_start_rejected, 0);
    assert_eq!(
        sol.stats.iterations, 0,
        "optimal family basis needs no pivots"
    );
    assert!(sol.stats.warm_iterations_saved > 0);
    assert_eq!(sol.objective.to_bits(), seed.objective.to_bits());

    // And `solve_job` (no context) still cold-starts — the warm path is
    // strictly opt-in.
    let cold = solver
        .solve_job::<f64>(
            3,
            &model,
            &opts,
            &BackendKind::GpuDense(DeviceSpec::gtx280()),
        )
        .result
        .expect("CPU rung always succeeds");
    assert_eq!(cold.stats.warm_start_attempted, 0);
    assert!(cold.stats.iterations > 0);
}

/// Tentpole acceptance (checkpointed recovery): an attempt that dies
/// mid-solve on the GPU rung leaves its latest checkpoint in the slot, and
/// the *next* attempt resumes from it instead of restarting — on the same
/// rung when retries remain.
#[test]
fn resilient_solver_resumes_from_checkpoint_on_retry() {
    use gplex::ResilientSolver;

    let model = generator::dense_random(16, 24, 42);
    let opts = SolverOptions {
        presolve: false,
        scale: false,
        refactor_period: 4,
        checkpoint_interval: 4,
        ..Default::default()
    };
    // Golden is the fault-free solve on the *same* rung: GPU and CPU agree
    // on every pivot and on the final answer bitwise, but the fingerprint
    // folds theta bits, which can differ in reduction order across
    // backends mid-path.
    let golden = solve_on::<f64>(&model, &opts, &BackendKind::GpuDense(DeviceSpec::gtx280()));
    assert_eq!(golden.status, Status::Optimal);

    // A certain kernel fault past a 300-op warmup: the scratch attempt dies
    // at iteration 5 with a checkpoint at 4; the resumed attempt has only
    // ~2 iterations of device work left and finishes inside the warmup.
    let solver = ResilientSolver::new(ResilienceOptions {
        faults: Some(FaultConfig {
            kernel_fault: 1.0,
            warmup_ops: 300,
            ..FaultConfig::off(9)
        }),
        ..Default::default()
    });
    let out = solver.solve_job::<f64>(
        0,
        &model,
        &opts,
        &BackendKind::GpuDense(DeviceSpec::gtx280()),
    );
    let sol = out.result.expect("resumed attempt finishes");
    assert_eq!(out.final_backend, "gpu-dense", "no degradation needed");
    assert_eq!(out.degradations, 0);
    assert!(out.faults > 0, "the fault must fire");
    assert!(out.retries >= 1, "the first attempt must die");
    assert_eq!(
        sol.stats.checkpoint_resumes, 1,
        "the retry must resume, not restart"
    );
    assert!(
        sol.stats.wasted_iterations < 4,
        "resume re-does less than one checkpoint interval, got {}",
        sol.stats.wasted_iterations
    );
    // Zero lost work: the resumed solve is bitwise the uninterrupted one.
    assert_eq!(sol.status, golden.status);
    assert_eq!(sol.objective.to_bits(), golden.objective.to_bits());
    assert_eq!(sol.stats.iterations, golden.stats.iterations);
    assert_eq!(sol.stats.pivot_fingerprint, golden.stats.pivot_fingerprint);
    for (a, b) in sol.x.iter().zip(&golden.x) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Cross-rung resume: with a zero retry budget the ladder degrades
/// immediately, and the checkpoint taken on the *GPU* rung resumes on the
/// fault-free *CPU* rung mid-solve — the snapshot basis lives in
/// standard-form space, which is identical across backends.
#[test]
fn gpu_checkpoint_resumes_on_cpu_rung_after_degradation() {
    use gplex::{ResilientSolver, RetryPolicy};

    let model = generator::dense_random(16, 24, 42);
    let opts = SolverOptions {
        presolve: false,
        scale: false,
        refactor_period: 4,
        checkpoint_interval: 4,
        ..Default::default()
    };
    let golden = solve_on::<f64>(&model, &opts, &BackendKind::CpuDense);

    let solver = ResilientSolver::new(ResilienceOptions {
        faults: Some(FaultConfig {
            kernel_fault: 1.0,
            warmup_ops: 300,
            ..FaultConfig::off(9)
        }),
        retry: RetryPolicy {
            max_retries: 0,
            ..Default::default()
        },
        ..Default::default()
    });
    let out = solver.solve_job::<f64>(
        1,
        &model,
        &opts,
        &BackendKind::GpuDense(DeviceSpec::gtx280()),
    );
    let sol = out.result.expect("CPU rung always completes");
    assert_eq!(out.final_backend, "cpu-dense");
    assert_eq!(out.degradations, 1, "single GPU attempt, then the ladder");
    assert_eq!(out.retries, 0);
    assert_eq!(
        sol.stats.checkpoint_resumes, 1,
        "the CPU rung must resume the GPU-taken checkpoint"
    );
    assert!(sol.stats.checkpoints_taken >= 1);
    assert!(sol.stats.wasted_iterations < 4);
    // The cross-rung resume still lands bitwise on the uninterrupted CPU
    // answer: the checkpoint boundary state is backend-independent.
    assert_eq!(sol.status, golden.status);
    assert_eq!(sol.objective.to_bits(), golden.objective.to_bits());
    assert_eq!(sol.stats.iterations, golden.stats.iterations);
    assert_eq!(sol.stats.pivot_fingerprint, golden.stats.pivot_fingerprint);
    for (a, b) in sol.x.iter().zip(&golden.x) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Bugfix regression (wasted-work accounting under repeated faults): when a
/// *resumed* attempt dies again before reaching a fresh checkpoint, only
/// the iterations past the checkpoint it resumed from are wasted — the
/// pre-checkpoint prefix must not be re-counted on every subsequent
/// failure. Three consecutive GPU attempts each die two iterations past
/// their latest boundary here; a double-count would fold the resumed
/// prefix (4, then 8 iterations) back in and report ≥ 16.
#[test]
fn repeated_faults_do_not_double_count_wasted_iterations() {
    use gplex::{ResilientSolver, RetryPolicy};

    let model = generator::dense_random(24, 40, 7);
    let opts = SolverOptions {
        presolve: false,
        scale: false,
        refactor_period: 2,
        checkpoint_interval: 2,
        ..Default::default()
    };
    let golden = solve_on::<f64>(&model, &opts, &BackendKind::CpuDense);
    assert_eq!(golden.status, Status::Optimal);

    // 600 warmup ops ≈ four iterations of device work at m = 24: every GPU
    // attempt survives past at least one checkpoint boundary and then dies,
    // so each retry genuinely resumes mid-solve before faulting again.
    let solver = ResilientSolver::new(ResilienceOptions {
        faults: Some(FaultConfig {
            kernel_fault: 1.0,
            warmup_ops: 600,
            ..FaultConfig::off(9)
        }),
        retry: RetryPolicy {
            max_retries: 2,
            ..Default::default()
        },
        ..Default::default()
    });
    let out = solver.solve_job::<f64>(
        5,
        &model,
        &opts,
        &BackendKind::GpuDense(DeviceSpec::gtx280()),
    );
    let sol = out.result.expect("CPU rung finishes after the ladder");
    assert_eq!(out.final_backend, "cpu-dense");
    assert_eq!(out.retries, 2, "both same-rung retries must burn");
    assert_eq!(out.degradations, 1);
    assert_eq!(out.faults, 3, "every GPU attempt dies");
    assert_eq!(
        sol.stats.checkpoint_resumes, 3,
        "attempts 2, 3, and the CPU rung all resume from a checkpoint"
    );
    // Each of the three failed attempts overran its latest checkpoint by
    // exactly two iterations. The sum is 6; any double-counting of the
    // resumed prefix would push this to 10+.
    assert_eq!(sol.stats.wasted_iterations, 6);
    // And the recovered answer is still bitwise the uninterrupted one.
    assert_eq!(sol.status, golden.status);
    assert_eq!(sol.objective.to_bits(), golden.objective.to_bits());
    assert_eq!(sol.stats.iterations, golden.stats.iterations);
    assert_eq!(sol.stats.pivot_fingerprint, golden.stats.pivot_fingerprint);
}
