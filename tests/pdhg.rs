//! Differential tests for the restarted-PDHG solver family: first-order
//! and simplex must agree on the shared fixture suite on every backend,
//! f32 must track f64 to its looser tolerance, restarts must be
//! deterministic, and the resilient ladder must degrade *across* algorithm
//! families when a backend is hosed.

use gplex::pdhg::{self, PdhgOptions};
use gplex::{
    solve, AlgorithmChoice, BackendKind, ResilienceOptions, ResilientSolver, SolverOptions, Status,
};
use gplex_suite::rel_err;
use gpu_sim::{DeviceSpec, FaultConfig};
use lp::generator::{self, fixtures};

fn backends() -> Vec<(&'static str, BackendKind)> {
    vec![
        ("cpu-dense", BackendKind::CpuDense),
        ("cpu-sparse", BackendKind::CpuSparse),
        ("gpu-dense", BackendKind::GpuDense(DeviceSpec::gtx280())),
    ]
}

#[test]
fn pdhg_matches_simplex_on_the_shared_suite_across_backends() {
    let cases = [
        fixtures::wyndor(),
        fixtures::two_phase(),
        fixtures::diet(),
        fixtures::production(),
        fixtures::degenerate(),
        fixtures::beale_cycling(),
    ];
    for (model, expected) in &cases {
        let golden = solve::<f64>(model, &SolverOptions::default());
        assert_eq!(golden.status, Status::Optimal, "{}", model.name);
        for (label, kind) in backends() {
            let sol = pdhg::try_solve_on::<f64>(model, &PdhgOptions::default(), &kind)
                .unwrap_or_else(|e| panic!("{} on {label}: {e}", model.name));
            assert_eq!(sol.status, Status::Optimal, "{} on {label}", model.name);
            assert!(
                rel_err(sol.objective, golden.objective) < 1e-6,
                "{} on {label}: pdhg {} vs simplex {}",
                model.name,
                sol.objective,
                golden.objective
            );
            assert!(
                rel_err(sol.objective, *expected) < 1e-6,
                "{} on {label}: pdhg {} vs textbook {}",
                model.name,
                sol.objective,
                expected
            );
            assert!(sol.stats.pdhg_iterations > 0, "{} on {label}", model.name);
            assert_eq!(sol.stats.iterations, 0, "{} on {label}", model.name);
        }
    }
}

#[test]
fn random_sparse_models_agree_on_every_backend() {
    for seed in [3u64, 11] {
        let model = generator::sparse_random(48, 64, 0.1, seed);
        let golden = solve::<f64>(&model, &SolverOptions::default());
        for (label, kind) in backends() {
            let sol = pdhg::try_solve_on::<f64>(&model, &PdhgOptions::default(), &kind)
                .unwrap_or_else(|e| panic!("seed {seed} on {label}: {e}"));
            assert_eq!(sol.status, Status::Optimal, "seed {seed} on {label}");
            assert!(
                rel_err(sol.objective, golden.objective) < 1e-6,
                "seed {seed} on {label}: {} vs {}",
                sol.objective,
                golden.objective
            );
        }
    }
}

#[test]
fn f32_tracks_f64_to_its_looser_tolerance() {
    let (model, _) = fixtures::wyndor();
    let s64 = pdhg::try_solve_on::<f64>(&model, &PdhgOptions::default(), &BackendKind::CpuSparse)
        .expect("f64 solves");
    let s32 = pdhg::try_solve_on::<f32>(&model, &PdhgOptions::default(), &BackendKind::CpuSparse)
        .expect("f32 solves");
    assert_eq!(s64.status, Status::Optimal);
    assert_eq!(s32.status, Status::Optimal);
    assert!(
        rel_err(s32.objective, s64.objective) < 1e-3,
        "f32 {} vs f64 {}",
        s32.objective,
        s64.objective
    );
}

#[test]
fn restarts_are_deterministic_bitwise() {
    // The restart fingerprint folds every restart's iterate; two identical
    // runs must agree bit for bit, on every backend.
    let model = generator::sparse_random(24, 32, 0.2, 5);
    for (label, kind) in backends() {
        let run = || {
            pdhg::try_solve_on::<f64>(&model, &PdhgOptions::default(), &kind)
                .unwrap_or_else(|e| panic!("{label}: {e}"))
        };
        let a = run();
        let b = run();
        assert!(a.stats.restarts > 0, "{label}: no restart exercised");
        assert_eq!(
            a.stats.pivot_fingerprint, b.stats.pivot_fingerprint,
            "{label}: fingerprint drift"
        );
        assert_eq!(
            a.objective.to_bits(),
            b.objective.to_bits(),
            "{label}: objective drift"
        );
    }
}

#[test]
fn duals_match_simplex_through_the_default_pipeline() {
    // Wyndor's singleton rows presolve into bounds; PDHG's recovered duals
    // must still land on the textbook shadow prices, same as simplex.
    let (model, _) = fixtures::wyndor();
    let sol = pdhg::try_solve_on::<f64>(&model, &PdhgOptions::default(), &BackendKind::CpuSparse)
        .expect("pdhg solves");
    let duals = sol.duals.as_ref().expect("duals survive presolve");
    let expected = [0.0, 1.5, 1.0];
    assert_eq!(duals.len(), expected.len());
    for (d, e) in duals.iter().zip(expected) {
        assert!((d - e).abs() < 1e-5, "duals {duals:?}");
    }
}

#[test]
fn hosed_gpu_degrades_across_the_pdhg_ladder_and_verifies() {
    // Every checked op faults on the GPU, so the PDHG ladder must walk down
    // to the fault-free CPU rung and still match the simplex golden result.
    let (model, _) = fixtures::wyndor();
    let golden = solve::<f64>(&model, &SolverOptions::default());
    let solver = ResilientSolver::new(ResilienceOptions {
        faults: Some(FaultConfig::uniform(9, 1.0)),
        algorithm: AlgorithmChoice::Pdhg,
        ..Default::default()
    });
    let out = solver.solve_job::<f64>(
        5,
        &model,
        &SolverOptions::default(),
        &BackendKind::GpuDense(DeviceSpec::gtx280()),
    );
    let sol = out.result.expect("CPU PDHG rung succeeds");
    assert_eq!(out.final_backend, "pdhg-cpu-dense");
    assert!(out.degradations > 0);
    assert!(out.faults > 0);
    assert_eq!(sol.status, Status::Optimal);
    assert!(sol.stats.pdhg_iterations > 0);
    assert!(
        rel_err(sol.objective, golden.objective) < 1e-6,
        "degraded pdhg {} vs simplex {}",
        sol.objective,
        golden.objective
    );
}
