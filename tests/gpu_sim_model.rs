//! Property and invariant tests of the GPU simulator's cost model — the
//! closed-form coalescing math against brute-force address enumeration, and
//! monotonicity of the timing model.

use gpu_sim::coalesce::distinct_segments;
use gpu_sim::{
    AccessPattern, DeviceSpec, ExecMode, Gpu, Kernel, KernelCost, LaunchConfig, ThreadCtx,
};
use proptest::prelude::*;

/// Brute-force transaction count: enumerate every lane address of every warp
/// instruction and count distinct segments per instruction.
fn brute_force_transactions(
    accesses: u64,
    elem: u64,
    stride: Option<u64>, // None = broadcast
    warp: u32,
    seg: u64,
) -> u64 {
    let w = warp as u64;
    let mut total = 0;
    let mut issued = 0;
    while issued < accesses {
        let lanes = w.min(accesses - issued);
        let addrs: Vec<u64> = (0..lanes)
            .map(|i| match stride {
                Some(s) => i * s,
                None => 0,
            })
            .collect();
        total += distinct_segments(&addrs, elem, seg);
        issued += lanes;
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Strided-pattern transactions match brute-force enumeration for any
    /// stride, count, and element width.
    #[test]
    fn strided_transactions_match_brute_force(
        accesses in 1u64..5000,
        stride in 1u64..20_000,
        wide in prop::bool::ANY,
    ) {
        let elem = if wide { 8 } else { 4 };
        let p = AccessPattern {
            accesses,
            elem_bytes: elem,
            kind: gpu_sim::PatternKind::Strided { stride_bytes: stride },
        };
        let (tx, _) = p.traffic(32, 128);
        let expect = brute_force_transactions(accesses, elem, Some(stride), 32, 128);
        prop_assert_eq!(tx, expect);
    }

    /// Broadcast is always exactly one transaction per warp instruction.
    #[test]
    fn broadcast_transactions(accesses in 1u64..5000) {
        let p = AccessPattern::broadcast::<f32>(accesses);
        let (tx, _) = p.traffic(32, 128);
        prop_assert_eq!(tx, accesses.div_ceil(32));
    }

    /// Coalesced patterns move exactly the payload (rounded to granules) and
    /// never more than strided patterns of the same size.
    #[test]
    fn coalesced_is_never_worse_than_strided(
        accesses in 1u64..5000,
        stride in 5u64..10_000,
    ) {
        let c = AccessPattern::coalesced::<f32>(accesses);
        let s = AccessPattern::strided::<f32>(accesses, stride);
        let (ctx, cbytes) = c.traffic(32, 128);
        let (stx, sbytes) = s.traffic(32, 128);
        prop_assert!(ctx <= stx);
        prop_assert!(cbytes <= sbytes);
    }

    /// Kernel time is monotone in traffic: more bytes can never be faster.
    #[test]
    fn timing_monotone_in_traffic(n1 in 1u64..1_000_000, n2 in 1u64..1_000_000) {
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let spec = DeviceSpec::gtx280();
        let cfg = LaunchConfig::for_elems(hi as usize, 256);
        let t_lo = gpu_sim::timing::kernel_timing(&spec, &cfg,
            &KernelCost::new().read(AccessPattern::coalesced::<f32>(lo)).active_threads(&cfg, lo));
        let t_hi = gpu_sim::timing::kernel_timing(&spec, &cfg,
            &KernelCost::new().read(AccessPattern::coalesced::<f32>(hi)).active_threads(&cfg, hi));
        prop_assert!(t_lo.total().as_nanos() <= t_hi.total().as_nanos() + 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Engine invariants.
// ---------------------------------------------------------------------------

struct Square {
    data: gpu_sim::DViewMut<f32>,
    n: usize,
}
impl Kernel for Square {
    fn name(&self) -> &'static str {
        "square"
    }
    fn run(&self, t: &ThreadCtx) {
        let i = t.global_id();
        if i < self.n {
            let v = self.data.get(i);
            self.data.set(i, v * v);
        }
    }
    fn cost(&self, cfg: &LaunchConfig) -> KernelCost {
        KernelCost::new()
            .flops_total(self.n as u64)
            .read(AccessPattern::coalesced::<f32>(self.n as u64))
            .write(AccessPattern::coalesced::<f32>(self.n as u64))
            .active_threads(cfg, self.n as u64)
    }
}

#[test]
fn parallel_and_sequential_execution_agree_bitwise() {
    let host: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
    let mut out = Vec::new();
    for mode in [ExecMode::Sequential, ExecMode::Parallel(3)] {
        let gpu = Gpu::with_mode(DeviceSpec::gtx280(), mode);
        let mut buf = gpu.htod(&host);
        gpu.launch(
            LaunchConfig::for_elems(host.len(), 96),
            &Square {
                data: buf.view_mut(),
                n: host.len(),
            },
        );
        out.push(gpu.dtoh(&buf));
    }
    assert_eq!(out[0], out[1]);
}

#[test]
fn simulated_time_is_deterministic() {
    let mut times = Vec::new();
    for _ in 0..2 {
        let gpu = Gpu::new(DeviceSpec::gtx280());
        let mut buf = gpu.htod(&vec![2.0f32; 4096]);
        for _ in 0..5 {
            gpu.launch(
                LaunchConfig::for_elems(4096, 128),
                &Square {
                    data: buf.view_mut(),
                    n: 4096,
                },
            );
        }
        times.push(gpu.elapsed().as_nanos());
    }
    assert_eq!(times[0], times[1]);
}

#[test]
fn faster_device_is_not_slower_on_bandwidth_bound_work() {
    // TITAN has ~2× the bandwidth of the GTX 280; a large streaming kernel
    // must not be slower on it.
    let mut elapsed = Vec::new();
    for spec in [DeviceSpec::gtx280(), DeviceSpec::gtx_titan()] {
        let gpu = Gpu::new(spec);
        let mut buf = gpu.htod(&vec![1.0f32; 1 << 20]);
        gpu.launch(
            LaunchConfig::for_elems(1 << 20, 256),
            &Square {
                data: buf.view_mut(),
                n: 1 << 20,
            },
        );
        let c = gpu.counters();
        elapsed.push((c.elapsed - c.breakdown.get(gpu_sim::TimeCategory::TransferH2D)).as_nanos());
    }
    assert!(
        elapsed[1] <= elapsed[0],
        "titan {} vs gtx280 {}",
        elapsed[1],
        elapsed[0]
    );
}

#[test]
fn counters_account_for_all_time() {
    let gpu = Gpu::new(DeviceSpec::gtx280());
    let mut buf = gpu.htod(&vec![1.0f32; 1024]);
    gpu.launch(
        LaunchConfig::for_elems(1024, 128),
        &Square {
            data: buf.view_mut(),
            n: 1024,
        },
    );
    let _ = gpu.dtoh(&buf);
    let c = gpu.counters();
    let sum: f64 = gpu_sim::TimeCategory::ALL
        .iter()
        .map(|cat| c.breakdown.get(*cat).as_nanos())
        .sum();
    assert!(
        (sum - c.elapsed.as_nanos()).abs() < 1.0,
        "breakdown must cover elapsed"
    );
    assert_eq!(c.kernels_launched, 1);
    assert_eq!(c.h2d_count, 1);
    assert_eq!(c.d2h_count, 1);
}
