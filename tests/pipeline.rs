//! End-to-end integration tests spanning every crate: model → presolve →
//! standard form → scaling → revised simplex (all backends) → recovery →
//! independent verification.

use gplex::{solve, solve_on, tableau, verify, BackendKind, PivotRule, SolverOptions, Status};
use gplex_suite::{paper_opts, rel_err};
use gpu_sim::DeviceSpec;
use lp::generator::{self, fixtures};
use lp::{LinearProgram, Rel, Sense, StandardForm};

fn backends() -> Vec<BackendKind> {
    vec![
        BackendKind::CpuDense,
        BackendKind::CpuSparse,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    ]
}

#[test]
fn fixtures_solve_identically_on_every_backend_and_precision() {
    let cases = [
        fixtures::wyndor(),
        fixtures::two_phase(),
        fixtures::diet(),
        fixtures::production(),
        fixtures::degenerate(),
        fixtures::beale_cycling(),
    ];
    for (model, expected) in cases {
        for kind in backends() {
            let s64 = solve_on::<f64>(&model, &SolverOptions::default(), &kind);
            assert_eq!(s64.status, Status::Optimal, "{} {kind:?} f64", model.name);
            assert!(
                rel_err(s64.objective, expected) < 1e-7,
                "{} {kind:?} f64: {} vs {expected}",
                model.name,
                s64.objective
            );
            verify::check_solution(&model, &s64, 1e-7).expect("f64 solution verifies");

            let s32 = solve_on::<f32>(&model, &SolverOptions::default(), &kind);
            assert_eq!(s32.status, Status::Optimal, "{} {kind:?} f32", model.name);
            assert!(
                rel_err(s32.objective, expected) < 1e-3,
                "{} {kind:?} f32: {} vs {expected}",
                model.name,
                s32.objective
            );
        }
    }
}

#[test]
fn pipeline_toggles_do_not_change_the_optimum() {
    let model = generator::dense_random(20, 28, 11);
    let reference = solve::<f64>(&model, &SolverOptions::default());
    assert_eq!(reference.status, Status::Optimal);
    for presolve in [false, true] {
        for scale in [false, true] {
            for rule in [PivotRule::Dantzig, PivotRule::Bland, PivotRule::Hybrid] {
                let opts = SolverOptions {
                    presolve,
                    scale,
                    pivot_rule: rule,
                    ..Default::default()
                };
                let sol = solve::<f64>(&model, &opts);
                assert_eq!(
                    sol.status,
                    Status::Optimal,
                    "presolve={presolve} scale={scale}"
                );
                assert!(
                    rel_err(sol.objective, reference.objective) < 1e-7,
                    "presolve={presolve} scale={scale} rule={rule:?}: {} vs {}",
                    sol.objective,
                    reference.objective
                );
            }
        }
    }
}

#[test]
fn revised_simplex_agrees_with_tableau_oracle_on_random_instances() {
    for seed in 0..6 {
        let (m, n) = (10 + seed as usize * 5, 14 + seed as usize * 4);
        let model = generator::dense_random(m, n, seed);
        let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
        let oracle = tableau::solve_standard(&sf, &paper_opts(m));
        assert_eq!(oracle.status, Status::Optimal);
        for kind in backends() {
            let sol = solve_on::<f64>(&model, &paper_opts(m), &kind);
            assert_eq!(sol.status, Status::Optimal, "seed {seed} {kind:?}");
            assert!(
                rel_err(sol.objective, sf.objective_from_std(oracle.z_std)) < 1e-7,
                "seed {seed} {kind:?}"
            );
        }
    }
}

#[test]
fn infeasible_and_unbounded_agree_across_backends_without_presolve() {
    let opts = SolverOptions {
        presolve: false,
        scale: false,
        ..Default::default()
    };
    for kind in backends() {
        let inf = solve_on::<f64>(&fixtures::infeasible(), &opts, &kind);
        assert_eq!(inf.status, Status::Infeasible, "{kind:?}");
        let unb = solve_on::<f64>(&fixtures::unbounded(), &opts, &kind);
        assert_eq!(unb.status, Status::Unbounded, "{kind:?}");
    }
}

#[test]
fn degenerate_network_problems_solve_on_gpu() {
    // Assignment problems are massively degenerate; transportation adds a
    // redundant row. Both must survive the GPU path end to end.
    let assign = generator::assignment(6, 3);
    let sol = solve_on::<f64>(
        &assign,
        &SolverOptions::default(),
        &BackendKind::GpuDense(DeviceSpec::gtx280()),
    );
    assert_eq!(sol.status, Status::Optimal);
    verify::check_solution(&assign, &sol, 1e-6).expect("assignment verifies");
    // Integral optimum (total assignment cost is a sum of integer costs).
    assert!((sol.objective - sol.objective.round()).abs() < 1e-6);

    let transport = generator::transportation(&[5.0, 9.0, 6.0], &[7.0, 5.0, 8.0], 13);
    let sol = solve_on::<f64>(
        &transport,
        &SolverOptions::default(),
        &BackendKind::GpuDense(DeviceSpec::gtx280()),
    );
    assert_eq!(sol.status, Status::Optimal);
    verify::check_solution(&transport, &sol, 1e-6).expect("transportation verifies");
}

#[test]
fn multi_period_staircase_solves_and_verifies_on_all_backends() {
    let model = generator::multi_period_production(10, 7);
    let mut objectives = Vec::new();
    for kind in backends() {
        let sol = solve_on::<f64>(&model, &SolverOptions::default(), &kind);
        assert_eq!(sol.status, Status::Optimal, "{kind:?}");
        verify::check_solution(&model, &sol, 1e-6).expect("verifies");
        objectives.push(sol.objective);
    }
    for pair in objectives.windows(2) {
        assert!(rel_err(pair[0], pair[1]) < 1e-8);
    }
    // Sanity: total cost at least cheapest-rate × total demand.
    let total_demand: f64 = model.constraints().iter().map(|c| c.rhs).sum();
    assert!(objectives[0] >= total_demand * 1.0 - 1e-6);
}

#[test]
fn bounded_variables_and_free_variables_round_trip() {
    // min −x − 2y + z with −3 ≤ x ≤ 3, y free, z ≥ 1, x + y + z ≤ 10,
    // y ≤ 4. Optimum: x = 3, y = 4, z = 1 → −3 − 8 + 1 = −10.
    let mut model = LinearProgram::new("bounds");
    let x = model.add_var("x", -3.0, 3.0, -1.0);
    let y = model.add_var("y", f64::NEG_INFINITY, f64::INFINITY, -2.0);
    let z = model.add_var("z", 1.0, f64::INFINITY, 1.0);
    model.add_constraint("cap", &[(x, 1.0), (y, 1.0), (z, 1.0)], Rel::Le, 10.0);
    model.add_constraint("ycap", &[(y, 1.0)], Rel::Le, 4.0);
    for kind in backends() {
        let sol = solve_on::<f64>(&model, &SolverOptions::default(), &kind);
        assert_eq!(sol.status, Status::Optimal, "{kind:?}");
        assert!(
            rel_err(sol.objective, -10.0) < 1e-8,
            "{kind:?}: {}",
            sol.objective
        );
        assert!((sol.x[0] - 3.0).abs() < 1e-8);
        assert!((sol.x[1] - 4.0).abs() < 1e-8);
        assert!((sol.x[2] - 1.0).abs() < 1e-8);
    }
}

#[test]
fn maximization_sign_handling_is_consistent() {
    let mut model = LinearProgram::new("max").with_sense(Sense::Max);
    let x = model.add_var_nonneg("x", 2.0);
    let y = model.add_var_nonneg("y", 3.0);
    model.add_constraint("c1", &[(x, 1.0), (y, 2.0)], Rel::Le, 14.0);
    model.add_constraint("c2", &[(x, 3.0), (y, -1.0)], Rel::Ge, 0.0);
    model.add_constraint("c3", &[(x, 1.0), (y, -1.0)], Rel::Le, 2.0);
    // Known optimum: x = 6, y = 4 → 24.
    let sol = solve::<f64>(&model, &SolverOptions::default());
    assert_eq!(sol.status, Status::Optimal);
    assert!(rel_err(sol.objective, 24.0) < 1e-8, "{}", sol.objective);
}

#[test]
fn mps_round_trip_preserves_the_optimum() {
    for seed in [3u64, 17] {
        let model = generator::dense_random(9, 13, seed);
        let text = lp::mps::write(&model);
        let reparsed = lp::mps::parse(&text).expect("round trip parses");
        let a = solve::<f64>(&model, &SolverOptions::default());
        let b = solve::<f64>(&reparsed, &SolverOptions::default());
        assert_eq!(a.status, Status::Optimal);
        assert_eq!(b.status, Status::Optimal);
        assert!(rel_err(a.objective, b.objective) < 1e-9);
    }
}

#[test]
fn klee_minty_is_exponential_under_dantzig_linear_under_bland() {
    let opts_d = SolverOptions {
        pivot_rule: PivotRule::Dantzig,
        presolve: false,
        scale: false,
        ..Default::default()
    };
    for n in [4usize, 6, 8] {
        let model = generator::klee_minty(n);
        let sol = solve::<f64>(&model, &opts_d);
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.stats.iterations, (1 << n) - 1, "KM({n}) under Dantzig");
        assert!(rel_err(sol.objective, generator::klee_minty_optimum(n)) < 1e-9);

        let opts_b = SolverOptions {
            pivot_rule: PivotRule::Bland,
            ..opts_d.clone()
        };
        let bl = solve::<f64>(&model, &opts_b);
        assert_eq!(bl.status, Status::Optimal);
        assert!(
            bl.stats.iterations < (1 << n) - 1 || n <= 4,
            "Bland should shortcut KM({n}): {} iterations",
            bl.stats.iterations
        );
    }
}

#[test]
fn gpu_sparse_and_dense_cpu_agree_on_sparse_instances() {
    let model = generator::sparse_random(40, 60, 0.1, 5);
    let opts = SolverOptions::default();
    let dense = solve_on::<f64>(&model, &opts, &BackendKind::CpuDense);
    let sparse = solve_on::<f64>(&model, &opts, &BackendKind::CpuSparse);
    let gpu = solve_on::<f64>(&model, &opts, &BackendKind::GpuDense(DeviceSpec::gtx280()));
    assert_eq!(dense.status, Status::Optimal);
    assert_eq!(sparse.status, Status::Optimal);
    assert_eq!(gpu.status, Status::Optimal);
    assert!(rel_err(dense.objective, sparse.objective) < 1e-8);
    assert!(rel_err(dense.objective, gpu.objective) < 1e-8);
}
