//! Warm-start behavior: reusing a previous solve's basis skips phase 1 and
//! most of phase 2; invalid bases fall back to the cold start without
//! affecting correctness.

use gplex::backends::CpuDenseBackend;
use gplex::Backend as _;
use gplex::{
    solve_on, solve_on_warm, solve_standard, solve_standard_with_basis, BackendKind, BasisCache,
    BatchOptions, BatchSolver, PlacementPolicy, RevisedSimplex, SolverOptions, Status, WarmContext,
    WarmStartPolicy,
};
use gpu_sim::DeviceSpec;
use lp::{generator, LinearProgram, Rel, StandardForm};

fn opts() -> SolverOptions {
    SolverOptions {
        presolve: false,
        scale: false,
        ..Default::default()
    }
}

fn backends() -> Vec<BackendKind> {
    vec![
        BackendKind::CpuDense,
        BackendKind::CpuSparse,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    ]
}

#[test]
fn restarting_from_the_optimal_basis_takes_zero_iterations() {
    let model = generator::dense_random(20, 30, 8);
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    for kind in backends() {
        let cold = solve_standard::<f64>(&sf, &opts(), &kind);
        assert_eq!(cold.status, Status::Optimal, "{kind:?}");
        assert!(cold.stats.iterations > 0);

        let warm = solve_standard_with_basis::<f64>(&sf, &opts(), &kind, cold.basis.clone());
        assert_eq!(warm.status, Status::Optimal, "{kind:?}");
        assert_eq!(
            warm.stats.iterations, 0,
            "{kind:?}: optimal basis needs no pivots"
        );
        assert!(
            (warm.z_std - cold.z_std).abs() < 1e-9,
            "{kind:?}: {} vs {}",
            warm.z_std,
            cold.z_std
        );
    }
}

#[test]
fn warm_start_from_perturbed_model_converges_faster() {
    // Solve model A; warm-start model B (same structure, slightly different
    // costs) from A's basis — the classic reoptimization pattern.
    let a = generator::dense_random(24, 36, 5);
    let sf_a = StandardForm::<f64>::from_lp(&a).expect("standardizes");
    let base = solve_standard::<f64>(&sf_a, &opts(), &BackendKind::CpuDense);
    assert_eq!(base.status, Status::Optimal);

    // Perturb the rhs by +5%: the optimal basis stays feasible (scaling b
    // scales β = B⁻¹b by the same positive factor), but the optimal point
    // moves — the classic reoptimization pattern.
    let mut sf_b = sf_a.clone();
    for v in sf_b.b.iter_mut() {
        *v *= 1.05;
    }

    let cold = solve_standard::<f64>(&sf_b, &opts(), &BackendKind::CpuDense);
    let warm = solve_standard_with_basis::<f64>(
        &sf_b,
        &opts(),
        &BackendKind::CpuDense,
        base.basis.clone(),
    );
    assert_eq!(cold.status, Status::Optimal);
    assert_eq!(warm.status, Status::Optimal);
    assert!((cold.z_std - warm.z_std).abs() / cold.z_std.abs().max(1.0) < 1e-9);
    assert!(
        warm.stats.iterations <= cold.stats.iterations,
        "warm {} should not exceed cold {}",
        warm.stats.iterations,
        cold.stats.iterations
    );
}

#[test]
fn singular_warm_basis_falls_back_to_cold_start() {
    let model = generator::dense_random(12, 18, 3);
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    let cold = solve_standard::<f64>(&sf, &opts(), &BackendKind::CpuDense);

    // Duplicate column → singular basis.
    let mut bad = cold.basis.clone();
    bad[1] = bad[0];
    let warm = solve_standard_with_basis::<f64>(&sf, &opts(), &BackendKind::CpuDense, bad);
    assert_eq!(warm.status, Status::Optimal);
    assert!((warm.z_std - cold.z_std).abs() < 1e-9);
    assert!(warm.stats.iterations > 0, "fallback must actually re-solve");
}

#[test]
fn malformed_warm_basis_is_ignored() {
    let model = generator::dense_random(10, 14, 2);
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    let cold = solve_standard::<f64>(&sf, &opts(), &BackendKind::CpuDense);
    // Wrong length and out-of-range columns are both rejected up front.
    for bad in [vec![0usize; 3], vec![sf.num_cols() + 5; sf.num_rows()]] {
        let warm = solve_standard_with_basis::<f64>(&sf, &opts(), &BackendKind::CpuDense, bad);
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.z_std - cold.z_std).abs() < 1e-9);
    }
}

#[test]
fn infeasible_warm_basis_falls_back() {
    // A feasible *basis* for the wrong vertex region: pick a basis whose
    // β has negative entries by solving a different rhs sign structure.
    let model = generator::dense_random(8, 12, 4);
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    let cold = solve_standard::<f64>(&sf, &opts(), &BackendKind::CpuDense);

    // Shrink the rhs so the old optimal basis becomes primal-infeasible
    // with decent probability; whether or not it does, the answer must be
    // the true optimum of the new problem.
    let mut sf2 = sf.clone();
    for v in sf2.b.iter_mut() {
        *v *= 0.2;
    }
    let cold2 = solve_standard::<f64>(&sf2, &opts(), &BackendKind::CpuDense);
    let warm2 =
        solve_standard_with_basis::<f64>(&sf2, &opts(), &BackendKind::CpuDense, cold.basis.clone());
    assert_eq!(warm2.status, cold2.status);
    if cold2.status == Status::Optimal {
        assert!((warm2.z_std - cold2.z_std).abs() / cold2.z_std.abs().max(1.0) < 1e-8);
    }
}

// ---------------------------------------------------------------------------
// Warm-path accounting (the invalid-basis fallback sweep).
// ---------------------------------------------------------------------------

/// Regression: an invalid candidate basis must leave a visible audit trail.
/// Before the counters existed, a rejected warm start was indistinguishable
/// from a cold solve in `SolveStats` — `warm_start_rejected` pins the
/// fallback, and `check_invariants` holds the counters to the solve shape.
#[test]
fn rejected_warm_basis_is_a_recorded_cold_fallback() {
    let model = generator::dense_random(12, 18, 3);
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    for kind in backends() {
        let cold = solve_standard::<f64>(&sf, &opts(), &kind);
        assert_eq!(cold.stats.warm_start_attempted, 0, "{kind:?}: cold solve");
        assert_eq!(cold.stats.warm_start_rejected, 0, "{kind:?}");

        // Duplicate column → singular candidate → validated, rejected once.
        let mut bad = cold.basis.clone();
        bad[1] = bad[0];
        let warm = solve_standard_with_basis::<f64>(&sf, &opts(), &kind, bad);
        assert_eq!(warm.status, Status::Optimal, "{kind:?}");
        assert_eq!(warm.stats.warm_start_attempted, 1, "{kind:?}");
        assert_eq!(warm.stats.warm_start_rejected, 1, "{kind:?}");
        assert_eq!(warm.stats.warm_iterations_saved, 0, "{kind:?}");
        assert!(warm.stats.iterations > 0, "{kind:?}: fallback re-solves");
        warm.stats.check_invariants().unwrap();

        // Accepted warm start: attempted without rejection, phase 1 skipped.
        let ok = solve_standard_with_basis::<f64>(&sf, &opts(), &kind, cold.basis.clone());
        assert_eq!(ok.stats.warm_start_attempted, 1, "{kind:?}");
        assert_eq!(ok.stats.warm_start_rejected, 0, "{kind:?}");
        assert_eq!(ok.stats.phase1_iterations, 0, "{kind:?}");
        ok.stats.check_invariants().unwrap();
    }
}

/// Pinning (audit follow-up): the rejected-candidate work — refactorize,
/// probe, restore — is charged exactly once. On the CPU backend the modeled
/// clock only advances inside charged ops, so the per-step totals must equal
/// the backend clock even on the reject-then-cold-solve path; double (or
/// dropped) charges would break the equality.
#[test]
fn rejected_warm_path_charges_land_exactly_once() {
    let model = generator::dense_random(14, 20, 6);
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    let n_active = sf.num_cols() - sf.num_artificials;
    let cold = solve_standard::<f64>(&sf, &opts(), &BackendKind::CpuDense);
    let mut bad = cold.basis.clone();
    bad[1] = bad[0];

    let mut be = CpuDenseBackend::new(&sf.a, &sf.b, n_active, &sf.basis0);
    let res = RevisedSimplex::with_start_basis(&mut be, &sf, &opts(), bad)
        .try_solve()
        .unwrap();
    assert_eq!(res.status, Status::Optimal);
    assert_eq!(res.stats.warm_start_rejected, 1);
    let clock = be.clock().as_nanos();
    let charged = res.stats.total_time().as_nanos();
    assert!(
        (clock - charged).abs() <= 1e-6 * clock.max(1.0),
        "backend clock {clock} ns vs charged {charged} ns — warm-reject work double- or un-charged"
    );
}

// ---------------------------------------------------------------------------
// The basis cache through the full pipeline.
// ---------------------------------------------------------------------------

/// One shared cache across sequential pipeline solves of a perturbed
/// family: the first member misses and seeds the cache, every later member
/// hits, converges in no more iterations, and reports its savings — with
/// objectives bitwise identical to the cold solves (the polish step makes
/// the reported point a pure function of the terminal basis).
#[test]
fn pipeline_cache_turns_family_members_into_warm_solves() {
    let family = generator::perturbed_family(6, 10, 14, 7, 1e-3);
    let opts = SolverOptions::default();
    for kind in backends() {
        let cache = BasisCache::new(16);
        let ctx = WarmContext {
            cache: &cache,
            policy: WarmStartPolicy::Family { tol: 1e-6 },
        };
        let mut iters = Vec::new();
        for (k, lp) in family.iter().enumerate() {
            let warm = solve_on_warm::<f64>(lp, &opts, &kind, Some(&ctx));
            let cold = solve_on::<f64>(lp, &opts, &kind);
            assert_eq!(warm.status, Status::Optimal, "{kind:?} member {k}");
            assert_eq!(
                warm.objective.to_bits(),
                cold.objective.to_bits(),
                "{kind:?} member {k}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            if k > 0 {
                assert_eq!(warm.stats.warm_start_attempted, 1, "{kind:?} member {k}");
                assert!(
                    warm.stats.iterations <= cold.stats.iterations,
                    "{kind:?} member {k}: warm {} > cold {}",
                    warm.stats.iterations,
                    cold.stats.iterations
                );
            }
            warm.stats.check_invariants().unwrap();
            iters.push(warm.stats.iterations);
        }
        let cs = cache.stats();
        assert_eq!(cs.misses, 1, "{kind:?}: only the seed member misses");
        assert_eq!(cs.hits, family.len() as u64 - 1, "{kind:?}");
        assert!(cs.len >= 1);
        // The family shares one key, so warm solves of sibling members need
        // strictly fewer iterations in aggregate than re-deriving each one.
        let saved: usize = iters[1..].iter().map(|&i| iters[0] - i.min(iters[0])).sum();
        assert!(saved > 0, "{kind:?}: no iterations saved across the family");
    }
}

/// `Exact` keying only re-uses bases across byte-identical re-solves: the
/// perturbed siblings all miss, the repeated member hits.
#[test]
fn exact_policy_only_hits_identical_instances() {
    let family = generator::perturbed_family(3, 8, 10, 11, 1e-3);
    let opts = SolverOptions::default();
    let cache = BasisCache::new(16);
    let ctx = WarmContext {
        cache: &cache,
        policy: WarmStartPolicy::Exact,
    };
    for lp in &family {
        let sol = solve_on_warm::<f64>(lp, &opts, &BackendKind::CpuDense, Some(&ctx));
        assert_eq!(sol.status, Status::Optimal);
    }
    assert_eq!(cache.stats().hits, 0, "perturbed siblings are not exact");
    let again = solve_on_warm::<f64>(&family[0], &opts, &BackendKind::CpuDense, Some(&ctx));
    assert_eq!(again.stats.warm_start_attempted, 1);
    assert_eq!(again.stats.iterations, 0, "exact re-solve restarts at opt");
    assert_eq!(cache.stats().hits, 1);
}

// ---------------------------------------------------------------------------
// The batch scheduler's warm path.
// ---------------------------------------------------------------------------

/// The headline path: a single-worker batch over a perturbed family with
/// `Family` keying hits the cache on every member after the first, saves
/// iterations, and produces objectives bitwise identical to the same batch
/// run cold.
#[test]
fn batch_family_warm_start_hits_and_saves_iterations() {
    let jobs = generator::perturbed_family(8, 10, 14, 21, 1e-3);
    let mk = |warm_start| {
        BatchSolver::new(BatchOptions {
            workers: 1,
            policy: PlacementPolicy::Fixed(BackendKind::CpuDense),
            warm_start,
            ..Default::default()
        })
        .solve::<f64>(&jobs)
    };
    let cold = mk(WarmStartPolicy::Off);
    let warm = mk(WarmStartPolicy::Family { tol: 1e-6 });
    assert!(cold.all_solved() && warm.all_solved());

    // Off: the warm counters stay at their seed-behavior zeros.
    assert_eq!(cold.stats.warm_hits, 0);
    assert_eq!(cold.stats.warm_misses, 0);
    assert_eq!(cold.stats.warm_iterations_saved, 0);
    assert!(cold.results.iter().all(|r| !r.warm_hit && !r.warm_rejected));

    // Family: one seed miss, then hits all the way down.
    assert_eq!(warm.stats.warm_misses, 1);
    assert_eq!(warm.stats.warm_hits, jobs.len() as u64 - 1);
    assert!(warm.stats.warm_hit_rate() > 0.5);
    assert_eq!(warm.stats.warm_rejected, 0);
    assert!(warm.stats.warm_iterations_saved > 0);
    assert!(!warm.results[0].warm_hit);
    for r in &warm.results[1..] {
        assert!(r.warm_hit, "job {} missed within its family", r.index);
    }

    // Same answers, bit for bit.
    for (c, w) in cold.results.iter().zip(&warm.results) {
        let (cs, ws) = (c.outcome.solution().unwrap(), w.outcome.solution().unwrap());
        assert_eq!(cs.status, ws.status);
        assert_eq!(
            cs.objective.to_bits(),
            ws.objective.to_bits(),
            "job {}",
            c.index
        );
    }
    // And the warm batch did strictly less simplex work.
    let total_iters = |rep: &gplex::BatchReport| -> usize {
        rep.results
            .iter()
            .map(|r| r.outcome.solution().unwrap().stats.iterations)
            .sum()
    };
    assert!(total_iters(&warm) < total_iters(&cold));
}

/// Accounting sweep: warm-start bookkeeping must not double-charge the
/// batch clocks or leak into fault/quarantine accounting. Per-backend wall
/// seconds stay the exact sum of per-job wall seconds (cache-hit jobs
/// counted once), and a warm rejection is not a device fault.
#[test]
fn batch_warm_accounting_stays_single_counted() {
    let jobs = generator::perturbed_family(6, 9, 12, 33, 1e-3);
    let report = BatchSolver::new(BatchOptions {
        workers: 2,
        policy: PlacementPolicy::Fixed(BackendKind::CpuDense),
        warm_start: WarmStartPolicy::Family { tol: 1e-6 },
        ..Default::default()
    })
    .solve::<f64>(&jobs);
    assert!(report.all_solved());

    // Every job tallied exactly once under its backend.
    let tallied_jobs: usize = report.stats.per_backend.values().map(|t| t.jobs).sum();
    assert_eq!(tallied_jobs, jobs.len());
    let tallied_wall: f64 = report
        .stats
        .per_backend
        .values()
        .map(|t| t.wall_seconds)
        .sum();
    let job_wall: f64 = report.results.iter().map(|r| r.wall_seconds).sum();
    assert!(
        (tallied_wall - job_wall).abs() <= 1e-12 * job_wall.max(1.0),
        "per-backend wall {tallied_wall} vs per-job wall {job_wall}"
    );

    // Cache hits are not faults, retries, or degradations.
    assert!(report.stats.warm_hits > 0);
    assert_eq!(report.stats.device_faults, 0);
    assert_eq!(report.stats.retries, 0);
    assert_eq!(report.stats.degradations, 0);

    // Lookup ledger balances: every job looked up exactly once (no panics
    // in this batch), and per-job flags agree with the cache's counters.
    assert_eq!(
        report.stats.warm_hits + report.stats.warm_misses,
        jobs.len() as u64
    );
    let flagged_hits = report.results.iter().filter(|r| r.warm_hit).count() as u64;
    assert_eq!(flagged_hits, report.stats.warm_hits);
    let saved: u64 = report.results.iter().map(|r| r.warm_iterations_saved).sum();
    assert_eq!(saved, report.stats.warm_iterations_saved);
    for r in &report.results {
        r.outcome
            .solution()
            .unwrap()
            .stats
            .check_invariants()
            .unwrap();
    }
}

/// Regression: the warm-start feasibility probe must run against the
/// *unclamped* basic solution. Backends clamp β at zero inside
/// `refactorize` (reinversion exists to purge noise mid-solve), so a probe
/// that reads the backend's β back would accept a basis whose true
/// `B⁻¹ b` has negative components — and phase 2 would then "converge" in
/// zero pivots at a primal-infeasible point with a better-than-optimal
/// objective.
///
/// The pair below shares one constraint matrix (so the `Family` key
/// matches) but swaps the right-hand sides: the seed's optimal basis
/// binds the wrong row for the sibling and is primal-infeasible there
/// (basic slack value −1). The sibling's warm attempt must be rejected
/// and fall back cold to the true optimum.
#[test]
fn primal_infeasible_cached_basis_is_rejected_not_clamped_feasible() {
    let build = |name: &str, b0: f64, b1: f64| {
        let mut m = LinearProgram::new(name);
        let x = m.add_var_nonneg("x", -1.0);
        m.add_constraint("r0", &[(x, 1.0)], Rel::Le, b0);
        m.add_constraint("r1", &[(x, 1.0)], Rel::Le, b1);
        m
    };
    let seed = build("seed", 1.0, 2.0); // optimum x = 1, r0 binding
    let sibling = build("sibling", 2.0, 1.0); // optimum x = 1, r1 binding

    // Presolve/scale off: the tiny models must reach the solver verbatim
    // so both map to the same standard form shape and family key.
    let opts = SolverOptions {
        presolve: false,
        scale: false,
        ..Default::default()
    };
    let cache = BasisCache::new(4);
    let ctx = WarmContext {
        cache: &cache,
        policy: WarmStartPolicy::Family { tol: 1e-6 },
    };

    let cold_seed = solve_on_warm::<f64>(&seed, &opts, &BackendKind::CpuDense, Some(&ctx));
    assert_eq!(cold_seed.status, Status::Optimal);
    assert_eq!(cache.stats().insertions, 1, "seed optimum enters the cache");

    let warm = solve_on_warm::<f64>(&sibling, &opts, &BackendKind::CpuDense, Some(&ctx));
    let cold = solve_on::<f64>(&sibling, &opts, &BackendKind::CpuDense);

    assert_eq!(cache.stats().hits, 1, "siblings share a family key");
    assert_eq!(warm.stats.warm_start_attempted, 1);
    assert_eq!(
        warm.stats.warm_start_rejected, 1,
        "infeasible cached basis must be rejected, not clamped feasible"
    );
    assert_eq!(warm.status, Status::Optimal);
    assert_eq!(
        warm.objective.to_bits(),
        cold.objective.to_bits(),
        "rejected warm start must reproduce the cold answer exactly: \
         warm {} vs cold {}",
        warm.objective,
        cold.objective
    );
    assert!(
        sibling.check_feasible(&warm.x, 1e-9).is_none(),
        "warm-path answer must satisfy the sibling's own constraints"
    );
    warm.stats.check_invariants().unwrap();
}
