//! Warm-start behavior: reusing a previous solve's basis skips phase 1 and
//! most of phase 2; invalid bases fall back to the cold start without
//! affecting correctness.

use gplex::{solve_standard, solve_standard_with_basis, BackendKind, SolverOptions, Status};
use gpu_sim::DeviceSpec;
use lp::{generator, StandardForm};

fn opts() -> SolverOptions {
    SolverOptions {
        presolve: false,
        scale: false,
        ..Default::default()
    }
}

fn backends() -> Vec<BackendKind> {
    vec![
        BackendKind::CpuDense,
        BackendKind::CpuSparse,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    ]
}

#[test]
fn restarting_from_the_optimal_basis_takes_zero_iterations() {
    let model = generator::dense_random(20, 30, 8);
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    for kind in backends() {
        let cold = solve_standard::<f64>(&sf, &opts(), &kind);
        assert_eq!(cold.status, Status::Optimal, "{kind:?}");
        assert!(cold.stats.iterations > 0);

        let warm = solve_standard_with_basis::<f64>(&sf, &opts(), &kind, cold.basis.clone());
        assert_eq!(warm.status, Status::Optimal, "{kind:?}");
        assert_eq!(
            warm.stats.iterations, 0,
            "{kind:?}: optimal basis needs no pivots"
        );
        assert!(
            (warm.z_std - cold.z_std).abs() < 1e-9,
            "{kind:?}: {} vs {}",
            warm.z_std,
            cold.z_std
        );
    }
}

#[test]
fn warm_start_from_perturbed_model_converges_faster() {
    // Solve model A; warm-start model B (same structure, slightly different
    // costs) from A's basis — the classic reoptimization pattern.
    let a = generator::dense_random(24, 36, 5);
    let sf_a = StandardForm::<f64>::from_lp(&a).expect("standardizes");
    let base = solve_standard::<f64>(&sf_a, &opts(), &BackendKind::CpuDense);
    assert_eq!(base.status, Status::Optimal);

    // Perturb the rhs by +5%: the optimal basis stays feasible (scaling b
    // scales β = B⁻¹b by the same positive factor), but the optimal point
    // moves — the classic reoptimization pattern.
    let mut sf_b = sf_a.clone();
    for v in sf_b.b.iter_mut() {
        *v *= 1.05;
    }

    let cold = solve_standard::<f64>(&sf_b, &opts(), &BackendKind::CpuDense);
    let warm = solve_standard_with_basis::<f64>(
        &sf_b,
        &opts(),
        &BackendKind::CpuDense,
        base.basis.clone(),
    );
    assert_eq!(cold.status, Status::Optimal);
    assert_eq!(warm.status, Status::Optimal);
    assert!((cold.z_std - warm.z_std).abs() / cold.z_std.abs().max(1.0) < 1e-9);
    assert!(
        warm.stats.iterations <= cold.stats.iterations,
        "warm {} should not exceed cold {}",
        warm.stats.iterations,
        cold.stats.iterations
    );
}

#[test]
fn singular_warm_basis_falls_back_to_cold_start() {
    let model = generator::dense_random(12, 18, 3);
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    let cold = solve_standard::<f64>(&sf, &opts(), &BackendKind::CpuDense);

    // Duplicate column → singular basis.
    let mut bad = cold.basis.clone();
    bad[1] = bad[0];
    let warm = solve_standard_with_basis::<f64>(&sf, &opts(), &BackendKind::CpuDense, bad);
    assert_eq!(warm.status, Status::Optimal);
    assert!((warm.z_std - cold.z_std).abs() < 1e-9);
    assert!(warm.stats.iterations > 0, "fallback must actually re-solve");
}

#[test]
fn malformed_warm_basis_is_ignored() {
    let model = generator::dense_random(10, 14, 2);
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    let cold = solve_standard::<f64>(&sf, &opts(), &BackendKind::CpuDense);
    // Wrong length and out-of-range columns are both rejected up front.
    for bad in [vec![0usize; 3], vec![sf.num_cols() + 5; sf.num_rows()]] {
        let warm = solve_standard_with_basis::<f64>(&sf, &opts(), &BackendKind::CpuDense, bad);
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.z_std - cold.z_std).abs() < 1e-9);
    }
}

#[test]
fn infeasible_warm_basis_falls_back() {
    // A feasible *basis* for the wrong vertex region: pick a basis whose
    // β has negative entries by solving a different rhs sign structure.
    let model = generator::dense_random(8, 12, 4);
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    let cold = solve_standard::<f64>(&sf, &opts(), &BackendKind::CpuDense);

    // Shrink the rhs so the old optimal basis becomes primal-infeasible
    // with decent probability; whether or not it does, the answer must be
    // the true optimum of the new problem.
    let mut sf2 = sf.clone();
    for v in sf2.b.iter_mut() {
        *v *= 0.2;
    }
    let cold2 = solve_standard::<f64>(&sf2, &opts(), &BackendKind::CpuDense);
    let warm2 =
        solve_standard_with_basis::<f64>(&sf2, &opts(), &BackendKind::CpuDense, cold.basis.clone());
    assert_eq!(warm2.status, cold2.status);
    if cold2.status == Status::Optimal {
        assert!((warm2.z_std - cold2.z_std).abs() / cold2.z_std.abs().max(1.0) < 1e-8);
    }
}
