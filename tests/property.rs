//! Property-based tests over the solver stack: randomized models, invariant
//! checks, cross-backend equivalence.

use gplex::batch::{BatchOptions, BatchSolver, PlacementPolicy};
use gplex::{solve, solve_on, verify, BackendKind, SolverOptions, Status};
use gpu_sim::DeviceSpec;
use lp::generator;
use lp::presolve::{presolve, PresolveResult};
use lp::scaling::{scale, ScalingKind};
use lp::StandardForm;
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..14, 2usize..18, 0u64..10_000)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// dense_random is feasible-by-construction (origin) and bounded
    /// (positive matrix), so every solve must be Optimal with objective ≤ 0
    /// (the origin scores 0), and the certificate must hold.
    #[test]
    fn dense_random_always_solves_optimally((m, n, seed) in small_dims()) {
        let model = generator::dense_random(m, n, seed);
        let opts = SolverOptions { presolve: false, scale: false, ..Default::default() };
        let sol = solve::<f64>(&model, &opts);
        prop_assert_eq!(sol.status, Status::Optimal);
        prop_assert!(sol.objective <= 1e-9, "origin scores 0, optimum {}", sol.objective);
        prop_assert!(model.check_feasible(&sol.x, 1e-7).is_none());
        verify::check_solution(&model, &sol, 1e-6).map_err(|e| {
            TestCaseError::fail(format!("verification failed: {e}"))
        })?;
    }

    /// CPU and simulated-GPU backends must agree on status and objective.
    #[test]
    fn cpu_gpu_equivalence((m, n, seed) in small_dims()) {
        let model = generator::dense_random(m, n, seed);
        let opts = SolverOptions { presolve: false, scale: false, ..Default::default() };
        let c = solve_on::<f64>(&model, &opts, &BackendKind::CpuDense);
        let g = solve_on::<f64>(&model, &opts, &BackendKind::GpuDense(DeviceSpec::gtx280()));
        prop_assert_eq!(c.status, g.status);
        prop_assert!((c.objective - g.objective).abs() / c.objective.abs().max(1.0) < 1e-7,
            "cpu {} vs gpu {}", c.objective, g.objective);
    }

    /// Presolve must preserve the optimum.
    #[test]
    fn presolve_preserves_optimum((m, n, seed) in small_dims()) {
        let model = generator::dense_random(m, n, seed);
        let with = solve::<f64>(&model, &SolverOptions { presolve: true, ..Default::default() });
        let without = solve::<f64>(&model, &SolverOptions { presolve: false, ..Default::default() });
        prop_assert_eq!(with.status, without.status);
        prop_assert!((with.objective - without.objective).abs()
            / without.objective.abs().max(1.0) < 1e-7);
    }

    /// Scaling must preserve the optimum.
    #[test]
    fn scaling_preserves_optimum((m, n, seed) in small_dims()) {
        let model = generator::dense_random(m, n, seed);
        let with = solve::<f64>(&model, &SolverOptions { scale: true, ..Default::default() });
        let without = solve::<f64>(&model, &SolverOptions { scale: false, ..Default::default() });
        prop_assert_eq!(with.status, without.status);
        prop_assert!((with.objective - without.objective).abs()
            / without.objective.abs().max(1.0) < 1e-7);
    }

    /// Presolve's restored solutions are feasible in the original model.
    #[test]
    fn presolve_restoration_is_feasible((m, n, seed) in small_dims()) {
        let model = generator::dense_random(m, n, seed);
        match presolve(&model) {
            PresolveResult::Reduced(p) => {
                let sol = solve::<f64>(&p.lp, &SolverOptions {
                    presolve: false, ..Default::default() });
                prop_assume!(sol.status == Status::Optimal);
                let full = p.restore(&sol.x);
                prop_assert!(model.check_feasible(&full, 1e-6).is_none());
            }
            other => prop_assert!(false, "dense_random should reduce, got {other:?}"),
        }
    }

    /// Standard-form recovery maps any basic feasible point back into the
    /// original feasible region.
    #[test]
    fn standard_form_solutions_recover_feasible((m, n, seed) in small_dims()) {
        let model = generator::dense_random(m, n, seed);
        let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
        let res = gplex::solve_standard::<f64>(&sf, &SolverOptions {
            presolve: false, scale: false, ..Default::default()
        }, &BackendKind::CpuDense);
        prop_assume!(res.status == Status::Optimal);
        let x = sf.recover_x(&res.x_std);
        prop_assert!(model.check_feasible(&x, 1e-6).is_none());
    }

    /// Geometric-mean scaling never increases the coefficient spread.
    #[test]
    fn scaling_reduces_spread((m, n, seed) in small_dims()) {
        let model = generator::dense_random(m, n, seed);
        let mut sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
        let report = scale(&mut sf, ScalingKind::GeometricMean);
        prop_assert!(report.spread_after <= report.spread_before * (1.0 + 1e-9));
    }

    /// MPS write→parse round trips preserve model shape and optimum.
    #[test]
    fn mps_round_trip((m, n, seed) in (2usize..10, 2usize..12, 0u64..1000)) {
        let model = generator::dense_random(m, n, seed);
        let reparsed = lp::mps::parse(&lp::mps::write(&model)).expect("parses");
        prop_assert_eq!(model.num_vars(), reparsed.num_vars());
        prop_assert_eq!(model.num_constraints(), reparsed.num_constraints());
        let a = solve::<f64>(&model, &SolverOptions::default());
        let b = solve::<f64>(&reparsed, &SolverOptions::default());
        prop_assert!((a.objective - b.objective).abs() / a.objective.abs().max(1.0) < 1e-9);
    }

    /// Placement policy is routing, not math: for any batch and any
    /// policy, the per-job status and objective match the fixed
    /// single-backend baseline — only the backend label may differ.
    #[test]
    fn placement_policy_never_changes_results(
        (count, workers, seed) in (2usize..10, 1usize..5, 0u64..10_000),
        crossover in 5usize..20,
    ) {
        let jobs = lp::generator::batch_mixed_sizes(
            count, &[(3, 4), (6, 8), (12, 16)], seed);
        let gpu = || BackendKind::GpuDense(gpu_sim::DeviceSpec::gtx280());
        let policies = [
            PlacementPolicy::Fixed(BackendKind::CpuDense),
            PlacementPolicy::RoundRobin(vec![
                BackendKind::CpuDense, BackendKind::CpuSparse, gpu()]),
            PlacementPolicy::size_threshold(
                crossover, BackendKind::CpuDense, gpu()),
        ];
        let baseline = BatchSolver::new(BatchOptions {
            workers,
            policy: policies[0].clone(),
            ..Default::default()
        }).solve::<f64>(&jobs);
        prop_assert!(baseline.all_solved());
        for policy in &policies[1..] {
            let routed = BatchSolver::new(BatchOptions {
                workers,
                policy: policy.clone(),
                ..Default::default()
            }).solve::<f64>(&jobs);
            prop_assert!(routed.all_solved());
            for (a, b) in baseline.results.iter().zip(&routed.results) {
                let (sa, sb) = (a.outcome.solution().unwrap(),
                                b.outcome.solution().unwrap());
                prop_assert_eq!(sa.status, sb.status);
                prop_assert!(
                    (sa.objective - sb.objective).abs()
                        / sa.objective.abs().max(1.0) < 1e-7,
                    "job {}: {} under {:?} vs {} fixed",
                    a.index, sb.objective, policy, sa.objective);
            }
        }
    }

    /// Sparse and dense backends agree on sparse instances.
    #[test]
    fn sparse_backend_equivalence(m in 4usize..20, seed in 0u64..500) {
        let n = m + 4;
        let model = generator::sparse_random(m, n, 0.3, seed);
        let opts = SolverOptions { presolve: false, scale: false, ..Default::default() };
        let d = solve_on::<f64>(&model, &opts, &BackendKind::CpuDense);
        let s = solve_on::<f64>(&model, &opts, &BackendKind::CpuSparse);
        prop_assert_eq!(d.status, s.status);
        if d.status == Status::Optimal {
            prop_assert!((d.objective - s.objective).abs() / d.objective.abs().max(1.0) < 1e-8);
        }
    }

    /// Warm starts are correctness-neutral on every backend: re-solving
    /// from a cached optimal basis takes zero pivots (fingerprint 0, so the
    /// terminal basis IS the supplied basis) and reports a bitwise-identical
    /// objective — the polish step makes the answer a pure function of the
    /// terminal basis, not of the pivot path that reached it.
    #[test]
    fn warm_restart_is_bitwise_equal_to_cold((m, n, seed) in small_dims()) {
        use gplex::{solve_on_warm, BasisCache, WarmContext, WarmStartPolicy};
        let model = generator::dense_random(m, n, seed);
        let opts = SolverOptions::default();
        for kind in [BackendKind::CpuDense, BackendKind::CpuSparse,
                     BackendKind::GpuDense(DeviceSpec::gtx280())] {
            let cache = BasisCache::new(4);
            let ctx = WarmContext { cache: &cache, policy: WarmStartPolicy::Family { tol: 1e-6 } };
            let cold = solve_on_warm::<f64>(&model, &opts, &kind, Some(&ctx));
            prop_assert_eq!(cold.status, Status::Optimal);
            prop_assert_eq!(cold.stats.warm_start_attempted, 0);

            let warm = solve_on_warm::<f64>(&model, &opts, &kind, Some(&ctx));
            prop_assert_eq!(warm.status, Status::Optimal);
            prop_assert_eq!(warm.stats.warm_start_attempted, 1);
            prop_assert_eq!(warm.stats.warm_start_rejected, 0);
            prop_assert_eq!(warm.stats.iterations, 0);
            prop_assert_eq!(warm.stats.pivot_fingerprint, 0);
            prop_assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
            prop_assert_eq!(cache.stats().hits, 1);
            warm.stats.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// Resuming from a mid-run checkpoint is bitwise-identical to the
    /// uninterrupted solve, on every backend: same terminal status, basis,
    /// iteration count, objective/solution bits — and the same final pivot
    /// fingerprint, which (FNV being a running fold over pivots) proves the
    /// resumed tail replayed the solo run's suffix pivot-for-pivot from the
    /// checkpoint iteration onward.
    #[test]
    fn resume_from_checkpoint_is_bitwise_identical((m, n, seed) in small_dims()) {
        use gplex::{try_solve_standard_ckpt, CheckpointSlot};
        let model = generator::dense_random(m, n, seed);
        let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
        // Tight cadence so even small instances cross a snapshot boundary.
        let opts = SolverOptions {
            presolve: false, scale: false,
            refactor_period: 2, checkpoint_interval: 2,
            ..Default::default()
        };
        for kind in [BackendKind::CpuDense, BackendKind::CpuSparse,
                     BackendKind::GpuDense(DeviceSpec::gtx280())] {
            let slot = CheckpointSlot::new();
            let solo = try_solve_standard_ckpt::<f64>(&sf, &opts, &kind, None, &slot, None)
                .expect("uninterrupted solve succeeds");
            let Some(cp) = slot.checkpoint() else {
                // Converged before the first boundary: nothing to resume.
                continue;
            };
            prop_assert_eq!(cp.stats.checkpoints_taken, solo.stats.checkpoints_taken,
                "the slot holds the last snapshot taken");
            let cp_iter = cp.stats.iterations;
            prop_assert!(cp_iter > 0 && cp_iter <= solo.stats.iterations);

            let slot2 = CheckpointSlot::new();
            let resumed =
                try_solve_standard_ckpt::<f64>(&sf, &opts, &kind, None, &slot2, Some(cp))
                    .expect("resumed solve succeeds");
            prop_assert_eq!(resumed.status, solo.status);
            prop_assert_eq!(resumed.basis.clone(), solo.basis.clone());
            prop_assert_eq!(resumed.stats.iterations, solo.stats.iterations);
            prop_assert_eq!(resumed.stats.refactorizations, solo.stats.refactorizations);
            prop_assert_eq!(resumed.stats.pivot_fingerprint, solo.stats.pivot_fingerprint,
                "resumed tail must replay the solo suffix pivot-for-pivot");
            prop_assert_eq!(resumed.z_std.to_bits(), solo.z_std.to_bits());
            for (a, b) in resumed.x_std.iter().zip(&solo.x_std) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(resumed.stats.checkpoint_resumes, 1);
            prop_assert_eq!(resumed.stats.checkpoints_taken, solo.stats.checkpoints_taken);
            resumed.stats.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// A perturbed family member warm-started from its sibling's basis
    /// reaches the same answer as its own cold solve, in no more pivots.
    #[test]
    fn family_warm_start_matches_cold_answer((m, n, seed) in small_dims()) {
        use gplex::{solve_on_warm, BasisCache, WarmContext, WarmStartPolicy};
        let family = generator::perturbed_family(2, m, n, seed, 1e-3);
        let opts = SolverOptions::default();
        let cache = BasisCache::new(4);
        let ctx = WarmContext { cache: &cache, policy: WarmStartPolicy::Family { tol: 1e-6 } };
        let seed_sol = solve_on_warm::<f64>(&family[0], &opts, &BackendKind::CpuDense, Some(&ctx));
        prop_assert_eq!(seed_sol.status, Status::Optimal);

        let warm = solve_on_warm::<f64>(&family[1], &opts, &BackendKind::CpuDense, Some(&ctx));
        let cold = solve_on::<f64>(&family[1], &opts, &BackendKind::CpuDense);
        prop_assert_eq!(warm.status, cold.status);
        prop_assert_eq!(cache.stats().hits, 1, "siblings share a family key");
        prop_assert!(warm.stats.iterations <= cold.stats.iterations,
            "warm {} > cold {}", warm.stats.iterations, cold.stats.iterations);
        prop_assert!((warm.objective - cold.objective).abs()
            / cold.objective.abs().max(1.0) < 1e-9,
            "warm {} vs cold {}", warm.objective, cold.objective);
        warm.stats.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// SoA pack → unpack round-trips bitwise for arbitrary (batch, m, n):
    /// the batch-innermost layout is a pure permutation of the elements.
    #[test]
    fn batch_layout_pack_unpack_roundtrips_bitwise(
        (width, m, n, seed) in (1usize..6, 1usize..9, 1usize..9, 0u64..10_000)
    ) {
        use linalg::{batch::{pack_vectors, unpack_vector}, DenseBatchLayout, DenseMatrix};
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let members: Vec<DenseMatrix<f64>> = (0..width)
            .map(|_| {
                let mut a = DenseMatrix::zeros(m, n);
                for i in 0..m {
                    for j in 0..n {
                        a.set(i, j, rng.random_range(-1e6..1e6));
                    }
                }
                a
            })
            .collect();
        let layout = DenseBatchLayout::pack(&members);
        prop_assert_eq!(layout.as_slice().len(), width * m * n);
        for (b, a) in members.iter().enumerate() {
            let back = layout.unpack(b);
            for i in 0..m {
                for j in 0..n {
                    prop_assert_eq!(back.get(i, j).to_bits(), a.get(i, j).to_bits(),
                        "lane {} ({}, {})", b, i, j);
                }
            }
        }
        let vecs: Vec<Vec<f64>> = (0..width)
            .map(|_| (0..m).map(|_| rng.random_range(-1e3..1e3)).collect())
            .collect();
        let refs: Vec<&[f64]> = vecs.iter().map(|v| v.as_slice()).collect();
        let packed = pack_vectors(&refs);
        for (b, v) in vecs.iter().enumerate() {
            let back = unpack_vector(&packed, width, b);
            for (i, (x, y)) in back.iter().zip(v).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "lane {} [{}]", b, i);
            }
        }
    }

    /// A random sequence of batched pivot updates applied to a width-W SoA
    /// block equals the same per-LP updates applied independently (the same
    /// kernel at width 1), bitwise, for B⁻¹ and β alike.
    #[test]
    fn batched_pivot_updates_match_independent_per_lp_updates(
        (width, m, steps, seed) in (2usize..6, 2usize..9, 1usize..6, 0u64..10_000)
    ) {
        use gpu_sim::{DeviceSpec, Gpu, LaunchConfig};
        use linalg::gpu::{BatchPivotK, CTL_ACTIVE};
        use linalg::DenseBatchLayout;
        use rand::{rngs::StdRng, RngExt, SeedableRng};

        let mut rng = StdRng::seed_from_u64(seed ^ 0xb10c_4a11);
        // Per-lane random state and a shared random pivot schedule.
        let binv0: Vec<Vec<f64>> = (0..width)
            .map(|_| (0..m * m).map(|_| rng.random_range(-2.0..2.0)).collect())
            .collect();
        let beta0: Vec<Vec<f64>> = (0..width)
            .map(|_| (0..m).map(|_| rng.random_range(0.0..3.0)).collect())
            .collect();
        // Each step: per-lane pivot row, step length, and an FTRAN column
        // whose pivot element is bounded away from zero.
        let schedule: Vec<Vec<(usize, f64, Vec<f64>)>> = (0..steps)
            .map(|_| {
                (0..width)
                    .map(|_| {
                        let p = rng.random_range(0..m as u64) as usize;
                        let theta = rng.random_range(0.0..2.0);
                        let mut alpha: Vec<f64> =
                            (0..m).map(|_| rng.random_range(-1.0..1.0)).collect();
                        alpha[p] = 0.5 + rng.random_range(0.0..1.5);
                        (p, theta, alpha)
                    })
                    .collect()
            })
            .collect();

        let run = |lanes: &[usize]| -> (Vec<f64>, Vec<f64>) {
            let (binv0, beta0) = (&binv0, &beta0);
            let w = lanes.len();
            let gpu = Gpu::new(DeviceSpec::gtx280());
            let mut binv = DenseBatchLayout::<f64>::zeros(m, m, w);
            for (slot, &lane) in lanes.iter().enumerate() {
                for i in 0..m {
                    for j in 0..m {
                        binv.set(slot, i, j, binv0[lane][i * m + j]);
                    }
                }
            }
            let mut binv_buf = gpu.try_htod(binv.as_slice()).unwrap();
            let beta_soa: Vec<f64> = (0..m)
                .flat_map(|i| lanes.iter().map(move |&lane| beta0[lane][i]))
                .collect();
            let mut beta_buf = gpu.try_htod(&beta_soa).unwrap();
            let gate_buf = gpu.try_htod(&vec![CTL_ACTIVE; w]).unwrap();
            let cfg = LaunchConfig::for_elems(w, 32);
            for round in &schedule {
                let alpha_soa: Vec<f64> = (0..m)
                    .flat_map(|i| lanes.iter().map(move |&lane| round[lane].2[i]))
                    .collect();
                let alpha_buf = gpu.try_htod(&alpha_soa).unwrap();
                let p_sel: Vec<u32> = lanes.iter().map(|&lane| round[lane].0 as u32).collect();
                let theta: Vec<f64> = lanes.iter().map(|&lane| round[lane].1).collect();
                let p_buf = gpu.try_htod(&p_sel).unwrap();
                let theta_buf = gpu.try_htod(&theta).unwrap();
                gpu.try_launch(cfg, &BatchPivotK {
                    binv: binv_buf.view_mut(),
                    beta: beta_buf.view_mut(),
                    alpha: alpha_buf.view(),
                    p_sel: p_buf.view(),
                    theta_sel: theta_buf.view(),
                    p_override: usize::MAX,
                    theta_override: 0.0,
                    gate: gate_buf.view(),
                    only: usize::MAX,
                    width: w,
                    m,
                    lanes: w as u64,
                }).unwrap();
            }
            (gpu.try_dtoh(&binv_buf).unwrap(), gpu.try_dtoh(&beta_buf).unwrap())
        };

        // Batched: all lanes in one SoA block. Independent: one lane each.
        let (binv_soa, beta_soa) = run(&(0..width).collect::<Vec<_>>());
        for lane in 0..width {
            let (binv_solo, beta_solo) = run(&[lane]);
            for i in 0..m {
                for j in 0..m {
                    let soa = binv_soa[(i + j * m) * width + lane];
                    let solo = binv_solo[i + j * m];
                    prop_assert_eq!(soa.to_bits(), solo.to_bits(),
                        "lane {} binv ({}, {}): {} vs {}", lane, i, j, soa, solo);
                }
                let bs = beta_soa[i * width + lane];
                let bi = beta_solo[i];
                prop_assert_eq!(bs.to_bits(), bi.to_bits(),
                    "lane {} beta[{}]: {} vs {}", lane, i, bs, bi);
            }
        }
    }
}
