//! Pluggable basis representation: product-form and sparse-LU vs
//! explicit-inverse parity, checkpoint cadence at non-divisible intervals,
//! and degeneracy policy regressions.

use gplex::backends::CpuDenseBackend;
use gplex::{
    solve_on, try_solve_standard, verify, Backend, BackendKind, BasisRepresentation,
    DegeneracyPolicy, RatioOutcome, SolverOptions, Status,
};
use gpu_sim::DeviceSpec;
use lp::generator;
use lp::StandardForm;
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..14, 2usize..18, 0u64..10_000)
}

fn opts_with(rep: BasisRepresentation) -> SolverOptions {
    SolverOptions {
        presolve: false,
        scale: false,
        basis_representation: rep,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// FTRAN/BTRAN parity on random bases: drive an explicit-inverse and a
    /// product-form backend through the *same* pivot sequence (decisions
    /// taken from the explicit one) and require every FTRAN column, reduced
    /// cost, and basic solution to agree within verify tolerance. This is
    /// the eta-algebra identity B⁻¹ = E_k…E_1·B₀⁻¹ checked against live
    /// simplex bases, not synthetic ones.
    #[test]
    fn product_form_ftran_btran_match_explicit_on_random_bases(
        (m, n, seed) in small_dims()
    ) {
        let model = generator::dense_random(m, n, seed);
        let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
        let n_active = sf.num_cols() - sf.num_artificials;
        let mut ex = CpuDenseBackend::<f64>::new(&sf.a, &sf.b, n_active, &sf.basis0);
        let mut pf = CpuDenseBackend::<f64>::new(&sf.a, &sf.b, n_active, &sf.basis0);
        Backend::<f64>::set_representation(&mut pf, BasisRepresentation::ProductForm);

        for be in [&mut ex, &mut pf] {
            be.set_phase_costs(&sf.c).unwrap();
            for (r, &j) in sf.basis0.iter().enumerate() {
                be.set_basic_cost(r, sf.c[j]).unwrap();
            }
        }
        // Walk up to 24 pivots; no refactorization, so the eta chain keeps
        // growing — the hardest case for drift.
        for _ in 0..24 {
            ex.compute_pricing().unwrap();
            pf.compute_pricing().unwrap();
            let hit = ex.entering_dantzig(1e-9).unwrap();
            let Some((q, dq_ex)) = hit else { break };
            // BTRAN parity surfaces through the reduced cost of q.
            let (q_pf, dq_pf) = pf.entering_dantzig(1e-9).unwrap()
                .expect("product form sees the same non-optimal state");
            prop_assert_eq!(q, q_pf, "entering column diverged");
            prop_assert!((dq_ex - dq_pf).abs() < 1e-7,
                "reduced cost {} vs {}", dq_ex, dq_pf);

            ex.compute_alpha(q).unwrap();
            pf.compute_alpha(q).unwrap();
            for i in 0..sf.num_rows() {
                let a = ex.alpha_at(i).unwrap();
                let b = pf.alpha_at(i).unwrap();
                prop_assert!((a - b).abs() <= 1e-7 * a.abs().max(1.0),
                    "ftran row {}: {} vs {}", i, a, b);
            }
            let outcome = ex.ratio_test(1e-9).unwrap();
            let RatioOutcome::Pivot { p, theta } = outcome else { break };
            // Apply the *same* pivot to both so the bases stay identical.
            ex.update(p, theta).unwrap();
            pf.update(p, theta).unwrap();
            for be in [&mut ex, &mut pf] {
                be.set_basic_col(p, q).unwrap();
                be.set_basic_cost(p, sf.c[q]).unwrap();
            }
            let beta_ex = ex.beta().unwrap();
            let beta_pf = pf.beta().unwrap();
            for (a, b) in beta_ex.iter().zip(&beta_pf) {
                prop_assert!((a - b).abs() <= 1e-7 * a.abs().max(1.0),
                    "beta {} vs {}", a, b);
            }
        }
        prop_assert_eq!(Backend::<f64>::eta_chain_len(&ex), 0);
    }

    /// End-to-end representation swap on random models: same status, and
    /// objectives within verify tolerance. The eta path reorders floating
    /// point, so this is tolerance parity, not bitwise.
    #[test]
    fn representation_swap_preserves_objective((m, n, seed) in small_dims()) {
        let model = generator::dense_random(m, n, seed);
        let ex = solve_on::<f64>(&model, &opts_with(BasisRepresentation::ExplicitInverse),
            &BackendKind::CpuDense);
        for rep in [BasisRepresentation::ProductForm, BasisRepresentation::SparseLU] {
            let alt = solve_on::<f64>(&model, &opts_with(rep), &BackendKind::CpuDense);
            prop_assert_eq!(ex.status, alt.status, "{:?}", rep);
            if ex.status == Status::Optimal {
                prop_assert!((ex.objective - alt.objective).abs()
                    / ex.objective.abs().max(1.0) < 1e-6,
                    "explicit {} vs {:?} {}", ex.objective, rep, alt.objective);
                verify::check_solution(&model, &alt, 1e-5).map_err(|e| {
                    TestCaseError::fail(format!("{rep:?} verification failed: {e}"))
                })?;
            }
        }
    }

    /// Sparse-LU FTRAN/BTRAN lockstep parity on random bases: drive an
    /// explicit-inverse and a sparse-LU backend through the same pivot
    /// sequence *including periodic refactorizations*, so the LU factors
    /// (not just the eta chain atop the identity) anchor the solves. Every
    /// reduced cost, FTRAN column, and basic solution must agree within
    /// verify tolerance.
    #[test]
    fn sparse_lu_lockstep_matches_explicit_on_random_bases(
        (m, n, seed) in small_dims()
    ) {
        let model = generator::dense_random(m, n, seed);
        let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
        let n_active = sf.num_cols() - sf.num_artificials;
        let mut ex = CpuDenseBackend::<f64>::new(&sf.a, &sf.b, n_active, &sf.basis0);
        let mut lu = CpuDenseBackend::<f64>::new(&sf.a, &sf.b, n_active, &sf.basis0);
        Backend::<f64>::set_representation(&mut lu, BasisRepresentation::SparseLU);

        for be in [&mut ex, &mut lu] {
            be.set_phase_costs(&sf.c).unwrap();
            for (r, &j) in sf.basis0.iter().enumerate() {
                be.set_basic_cost(r, sf.c[j]).unwrap();
            }
        }
        let mut basis = sf.basis0.clone();
        for it in 0..24 {
            // Refactorize both every 5 pivots: the LU side rebuilds its
            // factors from the live basis, the explicit side its inverse.
            if it > 0 && it % 5 == 0 {
                ex.refactorize(&basis).unwrap();
                lu.refactorize(&basis).unwrap();
                prop_assert_eq!(Backend::<f64>::eta_chain_len(&lu), 0);
            }
            ex.compute_pricing().unwrap();
            lu.compute_pricing().unwrap();
            let hit = ex.entering_dantzig(1e-9).unwrap();
            let Some((q, dq_ex)) = hit else { break };
            let (q_lu, dq_lu) = lu.entering_dantzig(1e-9).unwrap()
                .expect("sparse-LU sees the same non-optimal state");
            prop_assert_eq!(q, q_lu, "entering column diverged");
            prop_assert!((dq_ex - dq_lu).abs() < 1e-7,
                "reduced cost {} vs {}", dq_ex, dq_lu);

            ex.compute_alpha(q).unwrap();
            lu.compute_alpha(q).unwrap();
            for i in 0..sf.num_rows() {
                let a = ex.alpha_at(i).unwrap();
                let b = lu.alpha_at(i).unwrap();
                prop_assert!((a - b).abs() <= 1e-7 * a.abs().max(1.0),
                    "ftran row {}: {} vs {}", i, a, b);
            }
            let outcome = ex.ratio_test(1e-9).unwrap();
            let RatioOutcome::Pivot { p, theta } = outcome else { break };
            ex.update(p, theta).unwrap();
            lu.update(p, theta).unwrap();
            basis[p] = q;
            for be in [&mut ex, &mut lu] {
                be.set_basic_col(p, q).unwrap();
                be.set_basic_cost(p, sf.c[q]).unwrap();
            }
            let beta_ex = ex.beta().unwrap();
            let beta_lu = lu.beta().unwrap();
            for (a, b) in beta_ex.iter().zip(&beta_lu) {
                prop_assert!((a - b).abs() <= 1e-7 * a.abs().max(1.0),
                    "beta {} vs {}", a, b);
            }
        }
    }

    /// Satellite regression: the checkpoint cadence must stay bitwise-exact
    /// when `checkpoint_interval` is NOT a multiple of `refactor_period` —
    /// snapshots land on the next boundary past the interval, and a resume
    /// from any of them replays the solo suffix pivot-for-pivot. Runs on
    /// both representations (a product-form snapshot is legal only because
    /// the boundary folds the chain into B₀⁻¹ first).
    #[test]
    fn resume_is_bitwise_at_non_divisible_checkpoint_interval(
        (m, n, seed) in small_dims()
    ) {
        use gplex::{try_solve_standard_ckpt, CheckpointSlot};
        let model = generator::dense_random(m, n, seed);
        let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
        for rep in [
            BasisRepresentation::ExplicitInverse,
            BasisRepresentation::ProductForm,
            BasisRepresentation::SparseLU,
        ] {
            // 3 ∤ 7: the snapshot cadence and the reinversion cadence beat
            // against each other.
            let opts = SolverOptions {
                refactor_period: 3,
                checkpoint_interval: 7,
                ..opts_with(rep)
            };
            let kind = BackendKind::CpuDense;
            let slot = CheckpointSlot::new();
            let solo = try_solve_standard_ckpt::<f64>(&sf, &opts, &kind, None, &slot, None)
                .expect("uninterrupted solve succeeds");
            let Some(cp) = slot.checkpoint() else { continue };
            prop_assert_eq!(cp.representation, rep);
            prop_assert_eq!(cp.eta_len, 0, "snapshot off a reinversion boundary");
            // The snapshot sits on a refactorize boundary: in-phase
            // iterations are a multiple of the period.
            prop_assert_eq!(cp.iters_here % opts.refactor_period, 0);

            let slot2 = CheckpointSlot::new();
            let resumed =
                try_solve_standard_ckpt::<f64>(&sf, &opts, &kind, None, &slot2, Some(cp))
                    .expect("resumed solve succeeds");
            prop_assert_eq!(resumed.status, solo.status);
            prop_assert_eq!(resumed.stats.iterations, solo.stats.iterations);
            prop_assert_eq!(resumed.stats.pivot_fingerprint, solo.stats.pivot_fingerprint,
                "resumed tail must replay the solo suffix pivot-for-pivot");
            prop_assert_eq!(resumed.z_std.to_bits(), solo.z_std.to_bits());
            for (a, b) in resumed.x_std.iter().zip(&solo.x_std) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

/// The explicit-inverse path is the fidelity baseline: threading the
/// representation plumbing through must not move a single pivot. Bitwise
/// fingerprint parity between the default options and explicitly-requested
/// ExplicitInverse, on the shared fixture suite and all three backends.
#[test]
fn explicit_path_fingerprint_is_unchanged_by_plumbing() {
    let fixtures: Vec<(&str, lp::LinearProgram)> = vec![
        ("wyndor", generator::fixtures::wyndor().0),
        ("two_phase", generator::fixtures::two_phase().0),
        ("diet", generator::fixtures::diet().0),
        ("degenerate", generator::fixtures::degenerate().0),
        ("beale", generator::fixtures::beale_cycling().0),
        ("production", generator::fixtures::production().0),
    ];
    for (name, model) in &fixtures {
        let sf = StandardForm::<f64>::from_lp(model).expect("standardizes");
        for kind in [
            BackendKind::CpuDense,
            BackendKind::CpuSparse,
            BackendKind::GpuDense(DeviceSpec::gtx280()),
        ] {
            let default =
                try_solve_standard::<f64>(&sf, &SolverOptions::default(), &kind).expect("solves");
            let explicit = try_solve_standard::<f64>(
                &sf,
                &SolverOptions {
                    basis_representation: BasisRepresentation::ExplicitInverse,
                    ..Default::default()
                },
                &kind,
            )
            .expect("solves");
            assert_eq!(default.status, explicit.status, "{name} on {kind:?}");
            assert_eq!(
                default.stats.pivot_fingerprint, explicit.stats.pivot_fingerprint,
                "{name} on {kind:?}: explicit path moved a pivot"
            );
            assert_eq!(default.z_std.to_bits(), explicit.z_std.to_bits());
        }
    }
}

/// Representation swap on the shared fixture suite: every backend, same
/// status, objective within tolerance, and the eta-chain bookkeeping
/// behaves (chain bounded by the refactor period, eta pivots counted).
#[test]
fn product_form_solves_fixture_suite_on_all_backends() {
    let fixtures: Vec<(&str, lp::LinearProgram, f64)> = {
        let (wy, z1) = generator::fixtures::wyndor();
        let (tp, z2) = generator::fixtures::two_phase();
        let (dg, z3) = generator::fixtures::degenerate();
        let (bl, z4) = generator::fixtures::beale_cycling();
        vec![
            ("wyndor", wy, z1),
            ("two_phase", tp, z2),
            ("degenerate", dg, z3),
            ("beale", bl, z4),
        ]
    };
    for (name, model, expected) in &fixtures {
        for kind in [
            BackendKind::CpuDense,
            BackendKind::CpuSparse,
            BackendKind::GpuDense(DeviceSpec::gtx280()),
        ] {
            let opts = SolverOptions {
                refactor_period: 8,
                ..opts_with(BasisRepresentation::ProductForm)
            };
            let sol = solve_on::<f64>(model, &opts, &kind);
            assert_eq!(sol.status, Status::Optimal, "{name} on {kind:?}");
            assert!(
                (sol.objective - expected).abs() < 1e-6,
                "{name} on {kind:?}: {} vs {expected}",
                sol.objective
            );
            let st = &sol.stats;
            assert_eq!(
                st.eta_pivots, st.iterations,
                "{name} on {kind:?}: every pivot is an eta append"
            );
            assert!(
                st.max_eta_chain <= opts.refactor_period,
                "{name} on {kind:?}: chain {} exceeds period {}",
                st.max_eta_chain,
                opts.refactor_period
            );
        }
    }
}

/// Sparse-LU representation on the shared fixture suite: every backend,
/// same status and objective, pivots ride the eta chain (no dense update),
/// the chain stays bounded by the refactor period, and the LU counters
/// surface once a refactorization has run.
#[test]
fn sparse_lu_solves_fixture_suite_on_all_backends() {
    let fixtures: Vec<(&str, lp::LinearProgram, f64)> = {
        let (wy, z1) = generator::fixtures::wyndor();
        let (tp, z2) = generator::fixtures::two_phase();
        let (dg, z3) = generator::fixtures::degenerate();
        let (bl, z4) = generator::fixtures::beale_cycling();
        vec![
            ("wyndor", wy, z1),
            ("two_phase", tp, z2),
            ("degenerate", dg, z3),
            ("beale", bl, z4),
        ]
    };
    for (name, model, expected) in &fixtures {
        for kind in [
            BackendKind::CpuDense,
            BackendKind::CpuSparse,
            BackendKind::GpuDense(DeviceSpec::gtx280()),
        ] {
            let opts = SolverOptions {
                refactor_period: 8,
                ..opts_with(BasisRepresentation::SparseLU)
            };
            let sol = solve_on::<f64>(model, &opts, &kind);
            assert_eq!(sol.status, Status::Optimal, "{name} on {kind:?}");
            assert!(
                (sol.objective - expected).abs() < 1e-6,
                "{name} on {kind:?}: {} vs {expected}",
                sol.objective
            );
            let st = &sol.stats;
            assert_eq!(
                st.eta_pivots, st.iterations,
                "{name} on {kind:?}: every pivot is an eta append"
            );
            assert!(
                st.max_eta_chain <= opts.refactor_period,
                "{name} on {kind:?}: chain {} exceeds period {}",
                st.max_eta_chain,
                opts.refactor_period
            );
            if st.refactorizations > 0 {
                assert!(
                    st.lu_refactor_nnz > 0,
                    "{name} on {kind:?}: LU counters missing after {} refactorizations",
                    st.refactorizations
                );
            }
        }
    }
}

/// The EXPAND-style bound-shift policy terminates on the degenerate and
/// adversarial fixtures with the same optimum as the Bland ladder, and the
/// shift activations are counted.
#[test]
fn bound_shift_policy_terminates_on_degenerate_and_adversarial_fixtures() {
    let cases: Vec<(lp::LinearProgram, f64)> = vec![
        generator::fixtures::degenerate(),
        generator::fixtures::beale_cycling(),
        (generator::klee_minty(6), generator::klee_minty_optimum(6)),
    ];
    let mut total_shifts = 0;
    for (model, expected) in &cases {
        let shifted = solve_on::<f64>(
            model,
            &SolverOptions {
                stall_threshold: 2,
                presolve: false,
                scale: false,
                degeneracy: DegeneracyPolicy::BoundShift { delta: 1e-6 },
                ..Default::default()
            },
            &BackendKind::CpuDense,
        );
        assert_eq!(shifted.status, Status::Optimal);
        assert!(
            (shifted.objective - expected).abs() < 1e-6,
            "shifted objective {} vs {expected}",
            shifted.objective
        );
        verify::check_solution(model, &shifted, 1e-5).expect("shifted certificate verifies");
        total_shifts += shifted.stats.bound_shifts;
    }
    assert!(
        total_shifts >= 1,
        "the stalling fixtures must trip at least one bound shift"
    );
}

/// The perturbation policy must beat (or match) the Bland ladder where the
/// ladder is weakest: Klee–Minty walks and the degenerate fixtures still
/// terminate at the right optimum with the exact certificate.
#[test]
fn perturbation_policy_terminates_on_degenerate_and_adversarial_fixtures() {
    let cases: Vec<(lp::LinearProgram, f64)> = vec![
        generator::fixtures::degenerate(),
        generator::fixtures::beale_cycling(),
        (generator::klee_minty(6), generator::klee_minty_optimum(6)),
    ];
    for (model, expected) in &cases {
        let bland = solve_on::<f64>(
            model,
            &SolverOptions {
                stall_threshold: 2,
                presolve: false,
                scale: false,
                ..Default::default()
            },
            &BackendKind::CpuDense,
        );
        let pert = solve_on::<f64>(
            model,
            &SolverOptions {
                stall_threshold: 2,
                presolve: false,
                scale: false,
                degeneracy: DegeneracyPolicy::Perturb { scale: 1e-7 },
                ..Default::default()
            },
            &BackendKind::CpuDense,
        );
        assert_eq!(bland.status, Status::Optimal);
        assert_eq!(pert.status, Status::Optimal);
        assert!(
            (pert.objective - expected).abs() < 1e-6,
            "perturbed objective {} vs {expected}",
            pert.objective
        );
        assert!(
            (bland.objective - pert.objective).abs() < 1e-6,
            "policies disagree: {} vs {}",
            bland.objective,
            pert.objective
        );
    }
}
