//! Partial (windowed) pricing: same optimum as full Dantzig on every
//! backend, with O(m·window) pricing instead of O(m·n).

use gplex::{solve_standard, BackendKind, PivotRule, SolverOptions, Status, Step};
use gpu_sim::DeviceSpec;
use lp::{generator, StandardForm};

fn opts_with(rule: PivotRule) -> SolverOptions {
    SolverOptions {
        pivot_rule: rule,
        presolve: false,
        scale: false,
        ..Default::default()
    }
}

fn backends() -> Vec<BackendKind> {
    vec![
        BackendKind::CpuDense,
        BackendKind::CpuSparse,
        BackendKind::GpuDense(DeviceSpec::gtx280()),
    ]
}

#[test]
fn partial_pricing_reaches_the_same_optimum_on_every_backend() {
    for (m, n, seed) in [(16usize, 64usize, 1u64), (24, 96, 2), (12, 30, 3)] {
        let model = generator::dense_random(m, n, seed);
        let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
        let full =
            solve_standard::<f64>(&sf, &opts_with(PivotRule::Dantzig), &BackendKind::CpuDense);
        assert_eq!(full.status, Status::Optimal);
        for window in [1usize, 7, 16, 1000] {
            for kind in backends() {
                let partial = solve_standard::<f64>(
                    &sf,
                    &opts_with(PivotRule::PartialDantzig { window }),
                    &kind,
                );
                assert_eq!(partial.status, Status::Optimal, "{kind:?} w={window}");
                assert!(
                    (partial.z_std - full.z_std).abs() / full.z_std.abs().max(1.0) < 1e-9,
                    "{kind:?} w={window}: {} vs {}",
                    partial.z_std,
                    full.z_std
                );
            }
        }
    }
}

#[test]
fn partial_pricing_cuts_modeled_pricing_time_when_columns_dominate() {
    // n ≫ m: full pricing is O(m·n) per iteration, windowed is
    // O(m·w + m²). The effect shows on the CPU model (no launch overhead);
    // on the simulated GPU at *small* sizes the extra kernel launches of a
    // windowed pass outweigh the bandwidth saved — that regime flip is
    // itself asserted below.
    let model = generator::dense_random(48, 1920, 9);
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    let cpu = BackendKind::CpuDense;

    let full = solve_standard::<f64>(&sf, &opts_with(PivotRule::Dantzig), &cpu);
    let partial = solve_standard::<f64>(
        &sf,
        &opts_with(PivotRule::PartialDantzig { window: 96 }),
        &cpu,
    );
    assert_eq!(full.status, Status::Optimal);
    assert_eq!(partial.status, Status::Optimal);
    assert!((full.z_std - partial.z_std).abs() / full.z_std.abs().max(1.0) < 1e-9);

    let full_price_per_iter =
        full.stats.time(Step::Pricing).as_nanos() / full.stats.iterations.max(1) as f64;
    let partial_price_per_iter =
        partial.stats.time(Step::Pricing).as_nanos() / partial.stats.iterations.max(1) as f64;
    assert!(
        2.0 * partial_price_per_iter < full_price_per_iter,
        "windowed pricing {partial_price_per_iter} ns/iter should be well under full \
         {full_price_per_iter} ns/iter at n >> m"
    );

    // GPU at launch-bound sizes: windowed pricing must still be *correct*
    // (the performance claim is size-dependent and made in experiment T1b).
    let gpu = BackendKind::GpuDense(DeviceSpec::gtx280());
    let gfull = solve_standard::<f32>(
        &StandardForm::<f32>::from_lp(&model).expect("standardizes"),
        &opts_with(PivotRule::PartialDantzig { window: 96 }),
        &gpu,
    );
    assert_eq!(gfull.status, Status::Optimal);
}

#[test]
fn window_of_one_is_effectively_blandlike_and_still_terminates() {
    let (model, expected) = generator::fixtures::degenerate();
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    let res = solve_standard::<f64>(
        &sf,
        &opts_with(PivotRule::PartialDantzig { window: 1 }),
        &BackendKind::CpuDense,
    );
    assert_eq!(res.status, Status::Optimal);
    assert!((sf.objective_from_std(res.z_std) - expected).abs() < 1e-9);
}

#[test]
fn partial_pricing_solves_two_phase_problems() {
    let (model, expected) = generator::fixtures::two_phase();
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    for kind in backends() {
        let res = solve_standard::<f64>(
            &sf,
            &opts_with(PivotRule::PartialDantzig { window: 2 }),
            &kind,
        );
        assert_eq!(res.status, Status::Optimal, "{kind:?}");
        assert!(
            (sf.objective_from_std(res.z_std) - expected).abs() < 1e-8,
            "{kind:?}"
        );
    }
}

#[test]
fn oversized_window_matches_full_dantzig_iteration_count() {
    let model = generator::dense_random(14, 20, 6);
    let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
    let full = solve_standard::<f64>(&sf, &opts_with(PivotRule::Dantzig), &BackendKind::CpuDense);
    let huge = solve_standard::<f64>(
        &sf,
        &opts_with(PivotRule::PartialDantzig { window: usize::MAX }),
        &BackendKind::CpuDense,
    );
    assert_eq!(full.stats.iterations, huge.stats.iterations);
    assert!((full.z_std - huge.z_std).abs() < 1e-12);
}

// ---------------------------------------------------------------------------
// Wrap-boundary audit. The window advance truncates at the range end
// (`len = w.min(n - start)`) and wraps the cursor to 0; every window
// recomputes BTRAN + its reduced costs before selecting, so no window may
// ever select on stale prices. The property pins that: windowed pricing
// must reach the full-Dantzig objective for windows that do NOT divide n
// (forcing a truncated window and a wrap every pass).
// ---------------------------------------------------------------------------

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn partial_dantzig_matches_dantzig_across_wrap_boundaries(
        (m, n, seed) in (2usize..12, 4usize..24, 0u64..5_000),
        window in 1usize..9,
    ) {
        let model = generator::dense_random(m, n, seed);
        let sf = StandardForm::<f64>::from_lp(&model).expect("standardizes");
        let full = solve_standard::<f64>(
            &sf,
            &opts_with(PivotRule::Dantzig),
            &BackendKind::CpuDense,
        );
        prop_assert_eq!(full.status, Status::Optimal);
        for kind in [
            BackendKind::CpuDense,
            BackendKind::GpuDense(DeviceSpec::gtx280()),
        ] {
            let part = solve_standard::<f64>(
                &sf,
                &opts_with(PivotRule::PartialDantzig { window }),
                &kind,
            );
            prop_assert_eq!(part.status, Status::Optimal);
            prop_assert!(
                (part.z_std - full.z_std).abs() / full.z_std.abs().max(1.0) < 1e-7,
                "{:?} w={}: partial {} vs full {}",
                kind, window, part.z_std, full.z_std
            );
        }
    }
}
