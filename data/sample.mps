* Sample problem for `cargo run --release --example mps_solve -- data/sample.mps`
* A small production-mix LP: min-form (MPS minimizes), optimum -36 at (2, 6),
* i.e. the Wyndor Glass maximum of 36 with the objective negated.
NAME wyndor-min
ROWS
 N COST
 L PLANT1
 L PLANT2
 L PLANT3
COLUMNS
    DOORS COST -3.0 PLANT1 1.0
    DOORS PLANT3 3.0
    WINDOWS COST -5.0 PLANT2 2.0
    WINDOWS PLANT3 2.0
RHS
    RHS PLANT1 4.0 PLANT2 12.0
    RHS PLANT3 18.0
ENDATA
